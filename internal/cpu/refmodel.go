package cpu

import (
	"errors"
	"fmt"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// RefModel is a functional, one-instruction-at-a-time golden model of the
// ISA with no pipeline. It shares the EX-stage semantics with the pipelined
// CPU, so co-simulating the two validates exactly the machinery that can go
// wrong in the pipeline: operand bypassing, load-use stalls, control-flow
// flushes, and writeback ordering.
type RefModel struct {
	prog *asm.Program
	mem  *mem.Memory
	regs [isa.NumRegs]uint32
	pc   uint32

	halted bool
	insts  uint64
}

// NewRef builds a reference model with the program's data image loaded and
// the same initial register state the pipelined CPU uses.
func NewRef(p *asm.Program, m *mem.Memory) (*RefModel, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("cpu: empty program")
	}
	r := &RefModel{prog: p, mem: m, pc: p.Entry}
	if err := m.LoadImage(p.DataBase, p.Data); err != nil {
		return nil, err
	}
	r.regs[isa.SP] = p.DataEnd() + 4096
	r.regs[isa.GP] = p.DataBase
	return r, nil
}

// Reg returns an architectural register value.
func (r *RefModel) Reg(reg isa.Reg) uint32 { return r.regs[reg] }

// SetReg sets an architectural register.
func (r *RefModel) SetReg(reg isa.Reg, v uint32) {
	if reg != isa.Zero {
		r.regs[reg] = v
	}
}

// Mem returns the data memory.
func (r *RefModel) Mem() *mem.Memory { return r.mem }

// Halted reports whether a halt instruction retired.
func (r *RefModel) Halted() bool { return r.halted }

// Insts returns the number of executed instructions.
func (r *RefModel) Insts() uint64 { return r.insts }

// Run executes until halt or maxInsts instructions.
func (r *RefModel) Run(maxInsts uint64) error {
	for !r.halted {
		if r.insts >= maxInsts {
			return ErrMaxCycles
		}
		if err := r.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step executes one instruction.
func (r *RefModel) Step() error {
	if r.halted {
		return errors.New("cpu: stepping a halted reference model")
	}
	idx := (r.pc - r.prog.TextBase) / 4
	if r.pc < r.prog.TextBase || int(idx) >= len(r.prog.Text) || r.pc%4 != 0 {
		return fmt.Errorf("cpu: ref fetch outside text segment at pc %#x", r.pc)
	}
	in := r.prog.Text[idx]
	r.insts++

	// Operand selection mirrors the pipelined ID stage.
	var a, b uint32
	switch in.Op.Format() {
	case isa.FmtR:
		a, b = r.regs[in.Rs], r.regs[in.Rt]
	case isa.FmtRShift:
		a, b = r.regs[in.Rt], uint32(in.Imm)
	case isa.FmtRJump:
		a = r.regs[in.Rs]
	case isa.FmtI:
		a, b = r.regs[in.Rs], uint32(in.Imm)
	case isa.FmtILui:
		b = uint32(in.Imm)
	case isa.FmtIMem:
		a = r.regs[in.Rs]
		if in.Op.IsStore() {
			b = r.regs[in.Rt]
		}
	case isa.FmtIBranch:
		a, b = r.regs[in.Rs], r.regs[in.Rt]
	}

	res, target, taken, err := execInst(in, r.pc, a, b)
	if err != nil {
		return err
	}

	value := res
	switch {
	case in.Op.IsLoad():
		v, lerr := r.mem.LoadWord(res)
		if lerr != nil {
			return fmt.Errorf("cpu: ref pc %#x: %w", r.pc, lerr)
		}
		value = v
	case in.Op.IsStore():
		if serr := r.mem.StoreWord(res, b); serr != nil {
			return fmt.Errorf("cpu: ref pc %#x: %w", r.pc, serr)
		}
	case in.Op == isa.OpHalt:
		r.halted = true
	}
	if d, ok := in.Dest(); ok {
		r.regs[d] = value
	}
	if taken {
		r.pc = target
	} else {
		r.pc += 4
	}
	return nil
}
