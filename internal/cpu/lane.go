package cpu

import (
	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// Lane is the per-instance architectural half of the split core: the
// register file, the data memory, and the data values flowing through the
// pipeline latches. Everything in a Lane differs from run to run with the
// input data; everything outside it — the predecoded micro-op table, PC
// sequencing, latch valid/occupant control, stall and flush decisions — is
// data-independent for a fixed program path and therefore shareable across
// instances executing in lockstep.
//
// The pipelined CPU embeds one Lane; the gang engine (internal/gang) steps N
// of them through a single shared control computation per cycle.
type Lane struct {
	// Regs is the architectural register file.
	Regs [isa.NumRegs]uint32
	// Mem is the data memory.
	Mem *mem.Memory

	// Data halves of the pipeline latches. The control halves (which latch
	// is valid and which micro-op it holds) live with the owner, because
	// they are identical across lockstepped lanes.
	IDA, IDB uint32 // ID/EX operands as read in ID (pre-forwarding)
	EXOut    uint32 // EX/MEM ALU result (or memory address)
	EXStore  uint32 // EX/MEM store value
	WBVal    uint32 // MEM/WB value headed to the register file
}

// Init loads the program's data image and initialises the registers exactly
// as a fresh core does: SP at the top of a 4 KiB stack above the data
// segment, GP at the data base.
func (l *Lane) Init(p *asm.Program) error {
	if err := l.Mem.LoadImage(p.DataBase, p.Data); err != nil {
		return err
	}
	l.Regs[isa.SP] = p.DataEnd() + 4096
	l.Regs[isa.GP] = p.DataBase
	return nil
}

// Reset returns the lane to its power-on state for the program: memory
// cleared and the data image reloaded, registers and latch data zeroed, then
// Init applied. A reset lane is bit-identical to a fresh one.
func (l *Lane) Reset(p *asm.Program) error {
	l.Mem.Reset()
	l.Regs = [isa.NumRegs]uint32{}
	l.IDA, l.IDB, l.EXOut, l.EXStore, l.WBVal = 0, 0, 0, 0, 0
	return l.Init(p)
}

// LoadUseHazard reports whether the EX-stage occupant eu forces the ID-stage
// occupant u to stall one cycle: eu is a load whose destination feeds one of
// u's register operands, and the loaded value is only available after MEM.
// Shared by the pipelined core and the gang engine so the stall geometry can
// never drift between them.
func LoadUseHazard(eu, u *isa.UOp) bool {
	return eu.Load && eu.Dest != isa.Zero &&
		(eu.Dest == u.SrcA || (u.BReg && eu.Dest == u.SrcB))
}

// ForwardOperands resolves the EX-stage operand values of u against the
// EX/MEM occupant (exm, producing exmOut) and the MEM/WB occupant (mwb,
// producing mwbVal); a nil occupant is a bubble. MEM/WB forwards first so
// the younger EX/MEM result can override it; EX/MEM never forwards a load
// (load-use pairs are separated by the ID stall). Predecoded operand routing
// makes this uniform: A forwards when SrcA is a real register, B only when
// the micro-op reads B from the register file. Shared by the pipelined core
// and the gang engine.
func ForwardOperands(u *isa.UOp, a, b uint32, exm *isa.UOp, exmOut uint32, mwb *isa.UOp, mwbVal uint32) (uint32, uint32) {
	if mwb != nil {
		if d := mwb.Dest; d != isa.Zero {
			if d == u.SrcA {
				a = mwbVal
			}
			if u.BReg && d == u.SrcB {
				b = mwbVal
			}
		}
	}
	if exm != nil {
		if d := exm.Dest; d != isa.Zero && !exm.Load {
			if d == u.SrcA {
				a = exmOut
			}
			if u.BReg && d == u.SrcB {
				b = exmOut
			}
		}
	}
	return a, b
}
