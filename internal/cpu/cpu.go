// Package cpu implements the cycle-accurate simulator of the five-stage
// pipelined smart-card processor the paper targets: in-order IF/ID/EX/MEM/WB,
// full ALU forwarding, a one-cycle load-use stall, branches resolved in EX
// with a two-cycle flush, and the secure-instruction extension that runs the
// marked instruction on the precharged dual-rail datapath.
//
// The program is predecoded once at construction into a dense micro-op table
// (isa.UOp), so the steady-state Step loop is pure table dispatch: no
// instruction decoding, no format switches, and no allocation. Observation —
// energy metering, trace recording, leak checking — is external: probes
// attached with Attach receive per-stage events and a per-cycle commit
// callback, and must not perturb architectural state.
package cpu

import (
	"errors"
	"fmt"

	"desmask/internal/asm"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// Stats summarises a finished run. Energy totals live with the energy probe
// (energy.Probe), not here: the core has no notion of energy.
type Stats struct {
	Cycles     uint64
	Insts      uint64 // instructions retired
	SecureInst uint64 // retired instructions that ran dual-rail
	Stalls     uint64 // load-use stall cycles
	Flushes    uint64 // instructions squashed by taken branches/jumps
}

// ErrCycleLimit is the sentinel matched by errors.Is when Run exhausts its
// cycle budget before the program halts. The concrete error is a
// *CycleLimitError carrying the budget.
var ErrCycleLimit = errors.New("cpu: cycle limit reached before halt")

// CycleLimitError reports that Run hit its cycle budget before halting. It is
// distinguishable from program faults (fetch/memory errors, misaligned jumps):
// errors.Is(err, ErrCycleLimit) matches only budget expiry.
type CycleLimitError struct {
	Limit uint64
}

// Error implements error.
func (e *CycleLimitError) Error() string {
	return fmt.Sprintf("cpu: cycle limit of %d reached before halt", e.Limit)
}

// Is reports that a CycleLimitError matches the ErrCycleLimit sentinel.
func (e *CycleLimitError) Is(target error) bool { return target == ErrCycleLimit }

// CPU is one simulated core. Create with New.
type CPU struct {
	prog *asm.Program
	uops []isa.UOp // predecoded text, index = (pc-TextBase)/4

	probes   []Probe
	fetchObs []FetchObserver
	issueObs []IssueObserver
	execObs  []ExecObserver
	memObs   []MemObserver
	wbObs    []WritebackObserver

	lane Lane // per-instance architectural state (registers, memory, latch data)
	pc   uint32

	ifid  latch
	idex  latch
	exmem latch
	memwb latch

	draining bool // halt decoded; stop fetching
	halted   bool
	stats    Stats
}

// latch is the control half of a pipeline latch: occupancy plus an index
// into the micro-op table. The data values the latch carries live in the
// Lane (see lane.go); everything static about the instruction is read from
// the table. The split is what lets the gang engine share one set of control
// latches across N lockstepped lanes.
type latch struct {
	valid bool
	idx   int32
}

// New builds a CPU with the program loaded: the text segment is predecoded
// into the micro-op table, the data image is copied into memory, and the
// stack pointer is initialised to the top of a 4 KiB stack above the data
// segment.
func New(p *asm.Program, m *mem.Memory) (*CPU, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("cpu: empty program")
	}
	target := p.TargetOrDefault()
	// The pipelined core implements exactly the five-stage geometry; a target
	// declaring anything else must not run here, or its declared spec and the
	// simulated timing would silently disagree (the block-compiled engine in
	// internal/block derives its precomputed timing from the same spec).
	if spec := target.Pipeline(); spec != isa.FiveStage {
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("cpu: target %s: %w", target.Name(), err)
		}
		return nil, fmt.Errorf("cpu: target %s declares pipeline %+v, but this core implements only the five-stage geometry %+v",
			target.Name(), spec, isa.FiveStage)
	}
	uops, err := isa.PredecodeProgramFor(target, p.Text, p.TextBase)
	if err != nil {
		return nil, fmt.Errorf("cpu: %w", err)
	}
	c := &CPU{prog: p, uops: uops, lane: Lane{Mem: m}, pc: p.Entry}
	if err := c.lane.Init(p); err != nil {
		return nil, err
	}
	return c, nil
}

// Reset returns the core to its post-New state so it can run another job
// without reallocating: memory is cleared and the data image reloaded, and
// architectural registers, pipeline latches and statistics are zeroed. The
// micro-op table and attached probes are retained; reset probe state
// separately. A reset core is bit-identical to a fresh one.
func (c *CPU) Reset() error {
	if err := c.lane.Reset(c.prog); err != nil {
		return err
	}
	c.pc = c.prog.Entry
	c.ifid, c.idex, c.exmem, c.memwb = latch{}, latch{}, latch{}, latch{}
	c.draining, c.halted = false, false
	c.stats = Stats{}
	return nil
}

// Reg returns the current architectural value of r.
func (c *CPU) Reg(r isa.Reg) uint32 { return c.lane.Regs[r] }

// SetReg sets an architectural register (test and loader use).
func (c *CPU) SetReg(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.lane.Regs[r] = v
	}
}

// PC returns the current fetch PC.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether a halt instruction has retired.
func (c *CPU) Halted() bool { return c.halted }

// Stats returns the accumulated run statistics.
func (c *CPU) Stats() Stats { return c.stats }

// Mem returns the data memory.
func (c *CPU) Mem() *mem.Memory { return c.lane.Mem }

// UOps exposes the predecoded micro-op table (read-only; probe inspection).
func (c *CPU) UOps() []isa.UOp { return c.uops }

// Run simulates until halt or maxCycles. It returns a *CycleLimitError
// (matching ErrCycleLimit) when the budget expires first.
func (c *CPU) Run(maxCycles uint64) error {
	for !c.halted {
		if c.stats.Cycles >= maxCycles {
			return &CycleLimitError{Limit: maxCycles}
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the pipeline by one clock cycle.
func (c *CPU) Step() error {
	if c.halted {
		return errors.New("cpu: stepping a halted core")
	}
	cycle := c.stats.Cycles

	// Snapshot the control latches and the lane's latch data: all stages
	// observe start-of-cycle state.
	oldIFID, oldIDEX, oldEXMEM, oldMEMWB := c.ifid, c.idex, c.exmem, c.memwb
	ln := &c.lane
	oldIDA, oldIDB := ln.IDA, ln.IDB
	oldEXOut, oldEXStore := ln.EXOut, ln.EXStore
	oldWBVal := ln.WBVal

	var execU *isa.UOp // EX occupant this cycle, nil for a bubble

	// ---- WB ------------------------------------------------------------
	if oldMEMWB.valid {
		u := &c.uops[oldMEMWB.idx]
		for _, o := range c.wbObs {
			o.OnWriteback(WritebackEvent{Cycle: cycle, U: u, Value: oldWBVal})
		}
		if u.Dest != isa.Zero {
			ln.Regs[u.Dest] = oldWBVal
		}
		c.stats.Insts++
		if u.Secure {
			c.stats.SecureInst++
		}
		if u.Class == isa.ClassHalt {
			c.halted = true
		}
	}

	// ---- MEM -----------------------------------------------------------
	newMEMWB := latch{}
	if oldEXMEM.valid {
		u := &c.uops[oldEXMEM.idx]
		value := oldEXOut
		switch {
		case u.Load:
			v, err := ln.Mem.LoadWord(oldEXOut)
			if err != nil {
				return fmt.Errorf("cpu: pc %#x: %w", u.PC, err)
			}
			value = v
			for _, o := range c.memObs {
				o.OnMem(MemEvent{Cycle: cycle, U: u, Addr: oldEXOut, Data: v})
			}
		case u.Store:
			if err := ln.Mem.StoreWord(oldEXOut, oldEXStore); err != nil {
				return fmt.Errorf("cpu: pc %#x: %w", u.PC, err)
			}
			for _, o := range c.memObs {
				o.OnMem(MemEvent{Cycle: cycle, U: u, Addr: oldEXOut, Data: oldEXStore})
			}
		}
		ln.WBVal = value
		newMEMWB = latch{valid: true, idx: oldEXMEM.idx}
	}

	// ---- EX ------------------------------------------------------------
	newEXMEM := latch{}
	redirect := false
	var redirectPC uint32
	if oldIDEX.valid {
		u := &c.uops[oldIDEX.idx]
		var exmU, mwbU *isa.UOp
		if oldEXMEM.valid {
			exmU = &c.uops[oldEXMEM.idx]
		}
		if oldMEMWB.valid {
			mwbU = &c.uops[oldMEMWB.idx]
		}
		a, b := ForwardOperands(u, oldIDA, oldIDB, exmU, oldEXOut, mwbU, oldWBVal)
		execU = u

		res, target, taken, err := ExecUOp(u, a, b)
		if err != nil {
			return err
		}
		for _, o := range c.execObs {
			o.OnExec(ExecEvent{Cycle: cycle, U: u, A: a, B: b, Result: res, Taken: taken, Target: target})
		}

		ln.EXOut, ln.EXStore = res, b
		newEXMEM = latch{valid: true, idx: oldIDEX.idx}
		if taken {
			redirect, redirectPC = true, target
		}
	}

	// ---- ID ------------------------------------------------------------
	newIDEX := latch{}
	stall := false
	if oldIFID.valid {
		u := &c.uops[oldIFID.idx]
		// Load-use hazard: the load's value is only available after MEM.
		if oldIDEX.valid && LoadUseHazard(&c.uops[oldIDEX.idx], u) {
			stall = true
		}
		if !stall {
			a := ln.Regs[u.SrcA]
			b := u.BConst
			if u.BReg {
				b = ln.Regs[u.SrcB]
			}
			for _, o := range c.issueObs {
				o.OnIssue(IssueEvent{Cycle: cycle, U: u, A: a, B: b})
			}
			ln.IDA, ln.IDB = a, b
			newIDEX = latch{valid: true, idx: oldIFID.idx}
			if u.Class == isa.ClassHalt {
				c.draining = true
			}
		} else {
			c.stats.Stalls++
		}
	}

	// ---- IF ------------------------------------------------------------
	newIFID := oldIFID
	fetchFault := false
	if stall {
		// Freeze IF/ID and PC; bubble already inserted into EX.
	} else {
		newIFID = latch{}
		if !c.draining {
			idx := (c.pc - c.prog.TextBase) / 4
			if c.pc < c.prog.TextBase || int(idx) >= len(c.uops) || c.pc%4 != 0 {
				// Fetch may legitimately run past a not-yet-resolved jump
				// (wrong-path fetch); stall the fetch unit and fault only if
				// no redirect ever arrives (checked below once the pipeline
				// drains).
				fetchFault = true
			} else {
				for _, o := range c.fetchObs {
					o.OnFetch(FetchEvent{Cycle: cycle, PC: c.pc, Word: c.uops[idx].Word})
				}
				newIFID = latch{valid: true, idx: int32(idx)}
				c.pc += 4
			}
		}
	}

	// ---- control redirect ----------------------------------------------
	if redirect {
		// Squash the two younger instructions (in ID and IF this cycle).
		if newIDEX.valid {
			c.stats.Flushes++
		}
		if newIFID.valid {
			c.stats.Flushes++
		}
		newIDEX = latch{}
		newIFID = latch{}
		c.pc = redirectPC
		c.draining = false // a jump may legitimately leave a halt shadow
	}

	// A fetch fault is fatal only once the pipeline has drained without any
	// in-flight instruction that could still redirect control flow.
	if fetchFault && !redirect && !c.draining &&
		!newIFID.valid && !newIDEX.valid && !newEXMEM.valid && !newMEMWB.valid {
		return fmt.Errorf("cpu: instruction fetch outside text segment at pc %#x", c.pc)
	}

	// ---- commit latches --------------------------------------------------
	c.ifid, c.idex, c.exmem, c.memwb = newIFID, newIDEX, newEXMEM, newMEMWB

	c.stats.Cycles++
	info := CycleInfo{Cycle: cycle, U: execU}
	for _, p := range c.probes {
		p.OnCycle(info)
	}
	return nil
}

// ExecUOp computes the EX-stage result of one micro-op: the ALU output (or
// memory address), plus branch/jump resolution. It is shared by the pipelined
// CPU, the RefModel golden model and the block-compiled engine
// (internal/block), so that co-simulation isolates pipeline-control bugs and
// block-fused execution can never drift from the cycle-accurate EX semantics.
func ExecUOp(u *isa.UOp, a, b uint32) (res, target uint32, taken bool, err error) {
	switch u.Class {
	case isa.ClassAdd:
		res = a + b
	case isa.ClassSub:
		res = a - b
	case isa.ClassAnd:
		res = a & b
	case isa.ClassOr:
		res = a | b
	case isa.ClassXor:
		res = a ^ b
	case isa.ClassNor:
		res = ^(a | b)
	case isa.ClassSll:
		// ID places the shifted value in a and the count (immediate or rt)
		// in b for both fixed and variable shifts.
		res = a << (b & 31)
	case isa.ClassSrl:
		res = a >> (b & 31)
	case isa.ClassSra:
		res = uint32(int32(a) >> (b & 31))
	case isa.ClassSlt:
		if int32(a) < int32(b) {
			res = 1
		}
	case isa.ClassSltu:
		if a < b {
			res = 1
		}
	case isa.ClassMul:
		res = a * b
	case isa.ClassLui:
		res = b << 15
	case isa.ClassLui12:
		res = b << 12
	case isa.ClassMem:
		res = a + u.Off // address; b carries the store value
	case isa.ClassBeq:
		res = a - b
		if a == b {
			target, taken = u.Target, true
		}
	case isa.ClassBne:
		res = a - b
		if a != b {
			target, taken = u.Target, true
		}
	case isa.ClassBlez:
		if int32(a) <= 0 {
			target, taken = u.Target, true
		}
	case isa.ClassBgtz:
		if int32(a) > 0 {
			target, taken = u.Target, true
		}
	case isa.ClassJ:
		target, taken = u.Target, true
	case isa.ClassJal:
		res = u.PC + 4
		target, taken = u.Target, true
	case isa.ClassJr:
		target, taken = a, true
		if target%4 != 0 {
			return 0, 0, false, fmt.Errorf("cpu: jr to misaligned address %#x at pc %#x", target, u.PC)
		}
	case isa.ClassHalt:
		// no datapath effect
	default:
		return 0, 0, false, fmt.Errorf("cpu: unimplemented exec class %v at pc %#x", u.Class, u.PC)
	}
	return res, target, taken, nil
}
