// Package cpu implements the cycle-accurate simulator of the five-stage
// pipelined smart-card processor the paper targets: in-order IF/ID/EX/MEM/WB,
// full ALU forwarding, a one-cycle load-use stall, branches resolved in EX
// with a two-cycle flush, and the secure-instruction extension that runs the
// marked instruction on the precharged dual-rail datapath.
//
// Energy is accounted every cycle through an energy.Model; per-cycle results
// are streamed to a CycleSink so callers can capture full traces, windows, or
// totals without the simulator deciding storage policy.
package cpu

import (
	"errors"
	"fmt"

	"desmask/internal/asm"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/mem"
)

// CycleInfo describes one simulated clock cycle.
type CycleInfo struct {
	Cycle  uint64
	Energy energy.CycleEnergy
	// ExecPC and ExecInst describe the instruction occupying EX this cycle;
	// ExecValid is false for bubbles.
	ExecPC    uint32
	ExecInst  isa.Inst
	ExecValid bool
}

// CycleSink receives every simulated cycle.
type CycleSink interface {
	OnCycle(CycleInfo)
}

// SinkFunc adapts a function to CycleSink.
type SinkFunc func(CycleInfo)

// OnCycle implements CycleSink.
func (f SinkFunc) OnCycle(c CycleInfo) { f(c) }

// Stats summarises a finished run.
type Stats struct {
	Cycles     uint64
	Insts      uint64 // instructions retired
	SecureInst uint64 // retired instructions that ran dual-rail
	Stalls     uint64 // load-use stall cycles
	Flushes    uint64 // instructions squashed by taken branches/jumps
	EnergyPJ   float64
	ByComp     [energy.NumComponents]float64
}

// AvgPJPerCycle returns the mean per-cycle energy.
func (s Stats) AvgPJPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return s.EnergyPJ / float64(s.Cycles)
}

// ErrMaxCycles reports that Run hit its cycle budget before halting.
var ErrMaxCycles = errors.New("cpu: maximum cycle count reached before halt")

// CPU is one simulated core. Create with New.
type CPU struct {
	prog  *asm.Program
	words []uint32 // encoded text, index = (pc-TextBase)/4
	mem   *mem.Memory
	model *energy.Model
	sink  CycleSink

	regs [isa.NumRegs]uint32
	pc   uint32

	ifid  ifidLatch
	idex  idexLatch
	exmem exmemLatch
	memwb memwbLatch

	draining bool // halt decoded; stop fetching
	halted   bool
	stats    Stats
}

type ifidLatch struct {
	valid bool
	pc    uint32
	inst  isa.Inst
	word  uint32
}

type idexLatch struct {
	valid bool
	pc    uint32
	inst  isa.Inst
	a, b  uint32 // register operands as read in ID (pre-forwarding)
}

type exmemLatch struct {
	valid    bool
	pc       uint32
	inst     isa.Inst
	aluOut   uint32
	storeVal uint32
}

type memwbLatch struct {
	valid bool
	pc    uint32
	inst  isa.Inst
	value uint32
}

// New builds a CPU with the program loaded: text is placed in a Harvard-style
// instruction store, the data image is copied into memory, and the stack
// pointer is initialised to the top of a 4 KiB stack above the data segment.
func New(p *asm.Program, m *mem.Memory, model *energy.Model) (*CPU, error) {
	if len(p.Text) == 0 {
		return nil, errors.New("cpu: empty program")
	}
	c := &CPU{prog: p, mem: m, model: model, pc: p.Entry}
	c.words = make([]uint32, len(p.Text))
	for i, in := range p.Text {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, fmt.Errorf("cpu: text word %d: %w", i, err)
		}
		c.words[i] = w
	}
	if err := m.LoadImage(p.DataBase, p.Data); err != nil {
		return nil, err
	}
	c.regs[isa.SP] = p.DataEnd() + 4096
	c.regs[isa.GP] = p.DataBase
	return c, nil
}

// SetSink installs the per-cycle listener (may be nil).
func (c *CPU) SetSink(s CycleSink) { c.sink = s }

// Reset returns the core to its post-New state so it can run another job
// without reallocating: memory is cleared and the data image reloaded,
// architectural registers, pipeline latches and statistics are zeroed, and
// the energy model's rail history is reset. The encoded text and the
// installed sink are retained. A reset core is bit-identical to a fresh one.
func (c *CPU) Reset() error {
	c.mem.Reset()
	if err := c.mem.LoadImage(c.prog.DataBase, c.prog.Data); err != nil {
		return err
	}
	c.regs = [isa.NumRegs]uint32{}
	c.regs[isa.SP] = c.prog.DataEnd() + 4096
	c.regs[isa.GP] = c.prog.DataBase
	c.pc = c.prog.Entry
	c.ifid, c.idex, c.exmem, c.memwb = ifidLatch{}, idexLatch{}, exmemLatch{}, memwbLatch{}
	c.draining, c.halted = false, false
	c.stats = Stats{}
	c.model.Reset()
	return nil
}

// Reg returns the current architectural value of r.
func (c *CPU) Reg(r isa.Reg) uint32 { return c.regs[r] }

// SetReg sets an architectural register (test and loader use).
func (c *CPU) SetReg(r isa.Reg, v uint32) {
	if r != isa.Zero {
		c.regs[r] = v
	}
}

// PC returns the current fetch PC.
func (c *CPU) PC() uint32 { return c.pc }

// Halted reports whether a halt instruction has retired.
func (c *CPU) Halted() bool { return c.halted }

// Stats returns the accumulated run statistics.
func (c *CPU) Stats() Stats { return c.stats }

// Mem returns the data memory.
func (c *CPU) Mem() *mem.Memory { return c.mem }

// Run simulates until halt or maxCycles. It returns ErrMaxCycles when the
// budget expires first.
func (c *CPU) Run(maxCycles uint64) error {
	for !c.halted {
		if c.stats.Cycles >= maxCycles {
			return ErrMaxCycles
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Step advances the pipeline by one clock cycle.
func (c *CPU) Step() error {
	if c.halted {
		return errors.New("cpu: stepping a halted core")
	}
	c.model.BeginCycle()

	// Snapshot the latches: all stages observe start-of-cycle state.
	oldIFID, oldIDEX, oldEXMEM, oldMEMWB := c.ifid, c.idex, c.exmem, c.memwb

	info := CycleInfo{Cycle: c.stats.Cycles}

	// ---- WB ------------------------------------------------------------
	if oldMEMWB.valid {
		in := oldMEMWB.inst
		c.model.Writeback(oldMEMWB.value, in.Secure)
		if d, ok := in.Dest(); ok {
			c.regs[d] = oldMEMWB.value
			c.model.RegWrite()
		}
		c.stats.Insts++
		if in.Secure {
			c.stats.SecureInst++
		}
		if in.Op == isa.OpHalt {
			c.halted = true
		}
	}

	// ---- MEM -----------------------------------------------------------
	var newMEMWB memwbLatch
	if oldEXMEM.valid {
		in := oldEXMEM.inst
		value := oldEXMEM.aluOut
		switch {
		case in.Op.IsLoad():
			v, err := c.mem.LoadWord(oldEXMEM.aluOut)
			if err != nil {
				return fmt.Errorf("cpu: pc %#x: %w", oldEXMEM.pc, err)
			}
			c.model.MemAccess(oldEXMEM.aluOut, v, in.Secure)
			value = v
		case in.Op.IsStore():
			if err := c.mem.StoreWord(oldEXMEM.aluOut, oldEXMEM.storeVal); err != nil {
				return fmt.Errorf("cpu: pc %#x: %w", oldEXMEM.pc, err)
			}
			c.model.MemAccess(oldEXMEM.aluOut, oldEXMEM.storeVal, in.Secure)
		}
		newMEMWB = memwbLatch{valid: true, pc: oldEXMEM.pc, inst: in, value: value}
	}

	// ---- EX ------------------------------------------------------------
	var newEXMEM exmemLatch
	redirect := false
	var redirectPC uint32
	if oldIDEX.valid {
		in := oldIDEX.inst
		a, b := c.forward(oldIDEX, oldEXMEM, oldMEMWB)
		info.ExecPC, info.ExecInst, info.ExecValid = oldIDEX.pc, in, true

		c.model.OperandLatch(a, b, in.Secure)
		res, target, taken, err := execInst(in, oldIDEX.pc, a, b)
		if err != nil {
			return err
		}
		c.model.ALUOp(a, b, res, in.Op == isa.OpXor || in.Op == isa.OpXori, in.Secure)
		c.model.Result(res, in.Secure)

		newEXMEM = exmemLatch{valid: true, pc: oldIDEX.pc, inst: in, aluOut: res, storeVal: b}
		if taken {
			redirect, redirectPC = true, target
		}
	}

	// ---- ID ------------------------------------------------------------
	var newIDEX idexLatch
	stall := false
	if oldIFID.valid {
		in := oldIFID.inst
		// Load-use hazard: the load's value is only available after MEM.
		if oldIDEX.valid && oldIDEX.inst.Op.IsLoad() {
			if d, ok := oldIDEX.inst.Dest(); ok {
				for _, s := range in.Sources() {
					if s == d {
						stall = true
						break
					}
				}
			}
		}
		if !stall {
			c.model.Decode()
			srcs := in.Sources()
			c.model.RegRead(len(srcs))
			var a, b uint32
			switch in.Op.Format() {
			case isa.FmtR:
				a, b = c.regs[in.Rs], c.regs[in.Rt]
			case isa.FmtRShift:
				a, b = c.regs[in.Rt], uint32(in.Imm)
			case isa.FmtRJump:
				a = c.regs[in.Rs]
			case isa.FmtI:
				a, b = c.regs[in.Rs], uint32(in.Imm)
			case isa.FmtILui:
				b = uint32(in.Imm)
			case isa.FmtIMem:
				a = c.regs[in.Rs]
				if in.Op.IsStore() {
					b = c.regs[in.Rt] // store value; loads do not read rt
				}
			case isa.FmtIBranch:
				a, b = c.regs[in.Rs], c.regs[in.Rt]
			}
			newIDEX = idexLatch{valid: true, pc: oldIFID.pc, inst: in, a: a, b: b}
			if in.Op == isa.OpHalt {
				c.draining = true
			}
		} else {
			c.stats.Stalls++
		}
	}

	// ---- IF ------------------------------------------------------------
	newIFID := oldIFID
	fetchFault := false
	if stall {
		// Freeze IF/ID and PC; bubble already inserted into EX.
	} else {
		newIFID = ifidLatch{}
		if !c.draining {
			idx := (c.pc - c.prog.TextBase) / 4
			if c.pc < c.prog.TextBase || int(idx) >= len(c.words) || c.pc%4 != 0 {
				// Fetch may legitimately run past a not-yet-resolved jump
				// (wrong-path fetch); stall the fetch unit and fault only if
				// no redirect ever arrives (checked below once the pipeline
				// drains).
				fetchFault = true
			} else {
				word := c.words[idx]
				c.model.Fetch(word)
				newIFID = ifidLatch{valid: true, pc: c.pc, inst: c.prog.Text[idx], word: word}
				c.pc += 4
			}
		}
	}

	// ---- control redirect ----------------------------------------------
	if redirect {
		// Squash the two younger instructions (in ID and IF this cycle).
		if newIDEX.valid {
			c.stats.Flushes++
		}
		if newIFID.valid {
			c.stats.Flushes++
		}
		newIDEX = idexLatch{}
		newIFID = ifidLatch{}
		c.pc = redirectPC
		c.draining = false // a jump may legitimately leave a halt shadow
	}

	// A fetch fault is fatal only once the pipeline has drained without any
	// in-flight instruction that could still redirect control flow.
	if fetchFault && !redirect && !c.draining &&
		!newIFID.valid && !newIDEX.valid && !newEXMEM.valid && !newMEMWB.valid {
		return fmt.Errorf("cpu: instruction fetch outside text segment at pc %#x", c.pc)
	}

	// ---- commit latches --------------------------------------------------
	c.ifid, c.idex, c.exmem, c.memwb = newIFID, newIDEX, newEXMEM, newMEMWB

	info.Energy = c.model.EndCycle()
	c.stats.Cycles++
	c.stats.EnergyPJ += info.Energy.Total
	for i, v := range info.Energy.By {
		c.stats.ByComp[i] += v
	}
	if c.sink != nil {
		c.sink.OnCycle(info)
	}
	return nil
}

// forward resolves the EX-stage operand values using the standard forwarding
// paths: EX/MEM (one instruction ahead, ALU results only — load-use pairs
// are separated by the ID stall) and MEM/WB (two ahead, including load data).
func (c *CPU) forward(id idexLatch, exm exmemLatch, mwb memwbLatch) (a, b uint32) {
	a, b = id.a, id.b
	pick := func(r isa.Reg, cur uint32) uint32 {
		if r == isa.Zero {
			return cur
		}
		// MEM/WB first so the younger EX/MEM result can override it.
		if mwb.valid {
			if d, ok := mwb.inst.Dest(); ok && d == r {
				cur = mwb.value
			}
		}
		if exm.valid && !exm.inst.Op.IsLoad() {
			if d, ok := exm.inst.Dest(); ok && d == r {
				cur = exm.aluOut
			}
		}
		return cur
	}
	in := id.inst
	switch in.Op.Format() {
	case isa.FmtR:
		a, b = pick(in.Rs, a), pick(in.Rt, b)
	case isa.FmtRShift:
		a = pick(in.Rt, a)
	case isa.FmtRJump:
		a = pick(in.Rs, a)
	case isa.FmtI:
		a = pick(in.Rs, a)
	case isa.FmtIMem:
		a = pick(in.Rs, a)
		if in.Op.IsStore() {
			b = pick(in.Rt, b)
		}
	case isa.FmtIBranch:
		a, b = pick(in.Rs, a), pick(in.Rt, b)
	}
	return a, b
}

// execInst computes the EX-stage result of one instruction: the ALU output
// (or memory address), plus branch/jump resolution. It is shared by the
// pipelined CPU and the RefModel golden model so that co-simulation isolates
// pipeline-control bugs.
func execInst(in isa.Inst, pc, a, b uint32) (res, target uint32, taken bool, err error) {
	switch in.Op {
	case isa.OpAddu, isa.OpAddiu:
		res = a + b
	case isa.OpSubu:
		res = a - b
	case isa.OpAnd, isa.OpAndi:
		res = a & b
	case isa.OpOr, isa.OpOri:
		res = a | b
	case isa.OpXor, isa.OpXori:
		res = a ^ b
	case isa.OpNor:
		res = ^(a | b)
	case isa.OpSll, isa.OpSllv:
		// ID places the shifted value in a and the count (immediate or rt)
		// in b for both fixed and variable shifts.
		res = a << (b & 31)
	case isa.OpSrl, isa.OpSrlv:
		res = a >> (b & 31)
	case isa.OpSra, isa.OpSrav:
		res = uint32(int32(a) >> (b & 31))
	case isa.OpSlt, isa.OpSlti:
		if int32(a) < int32(b) {
			res = 1
		}
	case isa.OpSltu, isa.OpSltiu:
		if a < b {
			res = 1
		}
	case isa.OpMul:
		res = a * b
	case isa.OpLui:
		res = b << 15
	case isa.OpLw, isa.OpSw:
		res = a + uint32(in.Imm) // address; b carries the store value
	case isa.OpBeq:
		res = a - b
		if a == b {
			target, taken = pc+4+uint32(in.Imm)*4, true
		}
	case isa.OpBne:
		res = a - b
		if a != b {
			target, taken = pc+4+uint32(in.Imm)*4, true
		}
	case isa.OpBlez:
		if int32(a) <= 0 {
			target, taken = pc+4+uint32(in.Imm)*4, true
		}
	case isa.OpBgtz:
		if int32(a) > 0 {
			target, taken = pc+4+uint32(in.Imm)*4, true
		}
	case isa.OpJ:
		target, taken = uint32(in.Imm)*4, true
	case isa.OpJal:
		res = pc + 4
		target, taken = uint32(in.Imm)*4, true
	case isa.OpJr:
		target, taken = a, true
		if target%4 != 0 {
			return 0, 0, false, fmt.Errorf("cpu: jr to misaligned address %#x at pc %#x", target, pc)
		}
	case isa.OpHalt:
		// no datapath effect
	default:
		return 0, 0, false, fmt.Errorf("cpu: unimplemented opcode %v at pc %#x", in.Op, pc)
	}
	return res, target, taken, nil
}
