// Package jobstore persists leakd assessment jobs so that a kill — even an
// uncatchable SIGKILL — loses no accepted work. It is a plain-file store
// (the repository carries no database dependency) built on the two POSIX
// primitives that survive crashes: write-to-temp + rename for atomic
// visibility, and per-record files so no write ever touches more than one
// job's state.
//
// Layout under the store directory, one subdirectory per job:
//
//	<dir>/<id>/job.json        job record: request, state, verdict
//	<dir>/<id>/shard-0042.acc  one completed shard's accumulator pair
//
// The id is the job's idempotency key — a SHA-256 over the canonical
// request encoding plus the seed — so re-submitting an identical request
// converges on the same record instead of duplicating work, and a verdict is
// computed exactly once per distinct request: replays of a completed job
// return the stored verdict.
//
// Shard accumulator files are the unit of resumable progress: a crash
// mid-assessment keeps every completed shard (leakstat.ShardAccum encoding,
// CRC-verified on load, so a torn file degrades to "recompute this shard"),
// and a restart re-runs only the missing shards. Because shard execution is
// deterministic and the fold is in shard order, the resumed verdict is
// bit-identical to an uninterrupted run.
package jobstore

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"desmask/internal/leakstat"
)

// State is a job's lifecycle position.
type State string

const (
	// StatePending: persisted, not yet executing (or waiting to resume).
	StatePending State = "pending"
	// StateRunning: an executor owns the job. After a crash a running job
	// is indistinguishable from a pending one and is resumed the same way.
	StateRunning State = "running"
	// StateDone: the verdict is recorded; the job is immutable.
	StateDone State = "done"
	// StateFailed: the job ended with a non-retryable error.
	StateFailed State = "failed"
)

// ErrNotFound reports a job id with no record.
var ErrNotFound = errors.New("jobstore: job not found")

// Record is one persisted job.
type Record struct {
	// ID is the idempotency key (JobID of the request bytes).
	ID string `json:"id"`
	// Request is the original request body, replayed on resume.
	Request json.RawMessage `json:"request"`
	// State is the lifecycle position.
	State State `json:"state"`
	// Shards is the normalized shard count of the job's partition.
	Shards int `json:"shards"`
	// Created and Updated are wall-clock bookkeeping.
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
	// Verdict is the final response body once State is done.
	Verdict json.RawMessage `json:"verdict,omitempty"`
	// Error is the failure message once State is failed.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the record reached an immutable state.
func (r *Record) Terminal() bool { return r.State == StateDone || r.State == StateFailed }

// JobID derives the idempotency key of a request encoding. Two requests with
// the same canonical bytes (the seed is part of them) are the same job.
func JobID(canonicalRequest []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(canonicalRequest))
}

// Store is a directory-backed job store. All methods are safe for concurrent
// use; per-job mutations serialize on the store mutex (job records are a few
// KiB — the accumulator files, which carry the bulk, are written outside any
// lock).
type Store struct {
	dir string
	mu  sync.Mutex
}

// Open creates (if needed) and opens the store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("jobstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) jobDir(id string) string { return filepath.Join(s.dir, id) }

func (s *Store) recordPath(id string) string { return filepath.Join(s.jobDir(id), "job.json") }

func shardFile(s int) string { return fmt.Sprintf("shard-%04d.acc", s) }

// writeFileAtomic writes data to path via a temp file + rename, fsyncing the
// file so a crash immediately after return cannot lose it.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Create persists a new pending job, or returns the existing record when the
// id is already known (the idempotent path — the second result reports it).
// The record reaches disk before Create returns: an accepted job survives
// any subsequent crash.
func (s *Store) Create(id string, request json.RawMessage, shards int) (*Record, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, err := s.readRecord(id); err == nil {
		return rec, true, nil
	} else if !errors.Is(err, ErrNotFound) {
		return nil, false, err
	}
	now := time.Now().UTC()
	rec := &Record{
		ID:      id,
		Request: request,
		State:   StatePending,
		Shards:  shards,
		Created: now,
		Updated: now,
	}
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return nil, false, fmt.Errorf("jobstore: %w", err)
	}
	if err := s.writeRecord(rec); err != nil {
		return nil, false, err
	}
	return rec, false, nil
}

// Get returns the record for id, or ErrNotFound.
func (s *Store) Get(id string) (*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readRecord(id)
}

// List returns every record, ordered by creation time then id.
func (s *Store) List() ([]*Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var out []*Record
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := s.readRecord(e.Name())
		if err != nil {
			// A directory without a readable record is a partially created
			// or torn job: skip it rather than failing the listing.
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}

// Incomplete returns every pending or running record — the recovery set a
// restarted daemon must resume.
func (s *Store) Incomplete() ([]*Record, error) {
	all, err := s.List()
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, rec := range all {
		if !rec.Terminal() {
			out = append(out, rec)
		}
	}
	return out, nil
}

// SetRunning marks the job as owned by an executor. Terminal records are
// left untouched (a resumed replay of a done job must not reopen it).
func (s *Store) SetRunning(id string) error {
	return s.update(id, func(rec *Record) error {
		if rec.Terminal() {
			return fmt.Errorf("jobstore: job %s is %s", id, rec.State)
		}
		rec.State = StateRunning
		return nil
	})
}

// Complete records the verdict and moves the job to done. Completing an
// already-done job is a no-op (exactly-once verdicts: the first verdict
// wins; deterministic re-execution makes any second verdict identical
// anyway).
func (s *Store) Complete(id string, verdict json.RawMessage) error {
	return s.update(id, func(rec *Record) error {
		if rec.State == StateDone {
			return nil
		}
		rec.State = StateDone
		rec.Verdict = verdict
		rec.Error = ""
		return nil
	})
}

// Fail records a non-retryable failure.
func (s *Store) Fail(id string, msg string) error {
	return s.update(id, func(rec *Record) error {
		if rec.State == StateDone {
			return fmt.Errorf("jobstore: job %s already done", id)
		}
		rec.State = StateFailed
		rec.Error = msg
		return nil
	})
}

// Requeue returns a non-terminal job to pending (used at recovery time so
// observers see honest state while the job waits for an execution slot).
func (s *Store) Requeue(id string) error {
	return s.update(id, func(rec *Record) error {
		if rec.Terminal() {
			return fmt.Errorf("jobstore: job %s is %s", id, rec.State)
		}
		rec.State = StatePending
		return nil
	})
}

// PutShard persists one completed shard accumulator. The write is atomic:
// after a crash the file either holds the complete CRC-clean encoding or
// does not exist.
func (s *Store) PutShard(id string, acc *leakstat.ShardAccum) error {
	data, err := acc.MarshalBinary()
	if err != nil {
		return err
	}
	path := filepath.Join(s.jobDir(id), shardFile(acc.Shard))
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("jobstore: shard %d of %s: %w", acc.Shard, id, err)
	}
	return nil
}

// Shards loads every readable, checksum-clean shard accumulator of a job,
// keyed by shard index. Torn or corrupt files are silently skipped — they
// read as "not computed yet" and the shard is re-run.
func (s *Store) Shards(id string) (map[int]*leakstat.ShardAccum, error) {
	entries, err := os.ReadDir(s.jobDir(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	out := make(map[int]*leakstat.ShardAccum)
	for _, e := range entries {
		var idx int
		if _, err := fmt.Sscanf(e.Name(), "shard-%d.acc", &idx); err != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.jobDir(id), e.Name()))
		if err != nil {
			continue
		}
		acc := new(leakstat.ShardAccum)
		if err := acc.UnmarshalBinary(data); err != nil || acc.Shard != idx {
			continue
		}
		out[idx] = acc
	}
	return out, nil
}

// update applies fn to the record under the lock and persists the result.
func (s *Store) update(id string, fn func(*Record) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, err := s.readRecord(id)
	if err != nil {
		return err
	}
	if err := fn(rec); err != nil {
		return err
	}
	rec.Updated = time.Now().UTC()
	return s.writeRecord(rec)
}

func (s *Store) readRecord(id string) (*Record, error) {
	data, err := os.ReadFile(s.recordPath(id))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	rec := new(Record)
	if err := json.Unmarshal(data, rec); err != nil {
		return nil, fmt.Errorf("jobstore: job %s record corrupt: %w", id, err)
	}
	return rec, nil
}

func (s *Store) writeRecord(rec *Record) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileAtomic(s.recordPath(rec.ID), data); err != nil {
		return fmt.Errorf("jobstore: job %s: %w", rec.ID, err)
	}
	return nil
}
