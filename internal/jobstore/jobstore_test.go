package jobstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"desmask/internal/leakstat"
)

func testAccum(shard int) *leakstat.ShardAccum {
	acc := &leakstat.ShardAccum{Shard: shard, Cycles: uint64(1000 + shard), Fixed: leakstat.NewVec(3), Random: leakstat.NewVec(3)}
	acc.Fixed.AddTrace([]float64{1.5, 2.25, 3.125})
	acc.Fixed.AddTrace([]float64{0.5, 1.25, 2.5})
	acc.Random.AddTrace([]float64{4, 5, 6})
	acc.Random.AddTrace([]float64{7, 8, 9})
	return acc
}

// TestCreateIdempotent: the same id converges on one record; the second
// create reports the existing job.
func TestCreateIdempotent(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{"kernel":"des","traces":64}`)
	id := JobID(req)
	rec, existing, err := st.Create(id, req, 8)
	if err != nil || existing {
		t.Fatalf("first create: existing=%v err=%v", existing, err)
	}
	if rec.State != StatePending || rec.Shards != 8 || rec.ID != id {
		t.Fatalf("fresh record %+v", rec)
	}
	rec2, existing, err := st.Create(id, req, 8)
	if err != nil || !existing {
		t.Fatalf("second create: existing=%v err=%v", existing, err)
	}
	if rec2.ID != id || rec2.Created != rec.Created {
		t.Fatalf("idempotent create diverged: %+v vs %+v", rec2, rec)
	}
}

// TestLifecycleAndDurability: state transitions persist across a store
// reopen — the restart path after a kill.
func TestLifecycleAndDurability(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{"kernel":"des"}`)
	id := JobID(req)
	if _, _, err := st.Create(id, req, 4); err != nil {
		t.Fatal(err)
	}
	if err := st.SetRunning(id); err != nil {
		t.Fatal(err)
	}
	if err := st.PutShard(id, testAccum(0)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutShard(id, testAccum(2)); err != nil {
		t.Fatal(err)
	}

	// "Kill": drop the handle, reopen from disk.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := st2.Incomplete()
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) != 1 || inc[0].ID != id || inc[0].State != StateRunning {
		t.Fatalf("incomplete after reopen: %+v", inc)
	}
	shards, err := st2.Shards(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || shards[0] == nil || shards[2] == nil {
		t.Fatalf("shards after reopen: %v", shards)
	}
	if shards[2].Cycles != 1002 || shards[2].Fixed.N() != 2 {
		t.Fatalf("shard 2 content: %+v", shards[2])
	}

	verdict := json.RawMessage(`{"leak":true}`)
	if err := st2.Complete(id, verdict); err != nil {
		t.Fatal(err)
	}
	leakOf := func(raw json.RawMessage) bool {
		var v struct {
			Leak bool `json:"leak"`
		}
		if err := json.Unmarshal(raw, &v); err != nil {
			t.Fatalf("verdict %q: %v", raw, err)
		}
		return v.Leak
	}
	rec, err := st2.Get(id)
	if err != nil || rec.State != StateDone || !leakOf(rec.Verdict) {
		t.Fatalf("completed record %+v err=%v", rec, err)
	}
	// Completing again is a no-op, and the job leaves the recovery set.
	if err := st2.Complete(id, json.RawMessage(`{"leak":false}`)); err != nil {
		t.Fatal(err)
	}
	rec, _ = st2.Get(id)
	if !leakOf(rec.Verdict) {
		t.Fatalf("second Complete overwrote the verdict: %s", rec.Verdict)
	}
	if inc, _ := st2.Incomplete(); len(inc) != 0 {
		t.Fatalf("done job still in recovery set: %+v", inc)
	}
}

// TestCorruptShardSkipped: a torn shard file reads as "not computed".
func TestCorruptShardSkipped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := json.RawMessage(`{}`)
	id := JobID(req)
	if _, _, err := st.Create(id, req, 4); err != nil {
		t.Fatal(err)
	}
	if err := st.PutShard(id, testAccum(1)); err != nil {
		t.Fatal(err)
	}
	// Tear shard 1's file and plant a garbage shard 3.
	p1 := filepath.Join(dir, id, "shard-0001.acc")
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p1, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, id, "shard-0003.acc"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	shards, err := st.Shards(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 0 {
		t.Fatalf("corrupt shards surfaced: %v", shards)
	}
	// A clean rewrite recovers.
	if err := st.PutShard(id, testAccum(1)); err != nil {
		t.Fatal(err)
	}
	if shards, _ := st.Shards(id); len(shards) != 1 || shards[1] == nil {
		t.Fatalf("rewritten shard not visible: %v", shards)
	}
}

// TestFailAndNotFound: failure recording and missing-id errors.
func TestFailAndNotFound(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := st.SetRunning("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("SetRunning missing: %v", err)
	}
	req := json.RawMessage(`{"x":1}`)
	id := JobID(req)
	if _, _, err := st.Create(id, req, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Fail(id, "boom"); err != nil {
		t.Fatal(err)
	}
	rec, err := st.Get(id)
	if err != nil || rec.State != StateFailed || rec.Error != "boom" {
		t.Fatalf("failed record %+v err=%v", rec, err)
	}
}

// TestJobIDStable: the idempotency key is a pure function of the bytes.
func TestJobIDStable(t *testing.T) {
	a := JobID([]byte(`{"kernel":"des","seed":7}`))
	b := JobID([]byte(`{"kernel":"des","seed":7}`))
	c := JobID([]byte(`{"kernel":"des","seed":8}`))
	if a != b {
		t.Fatal("identical requests hash differently")
	}
	if a == c {
		t.Fatal("distinct seeds collide")
	}
}
