// Package mem provides the word-addressable data/instruction memory of the
// simulated smart-card system. The memory array itself is treated as
// data-independent for energy purposes (per the paper, "the memory access
// itself is not sensitive to the data being read due to the differential
// nature of the memory reads"); the data-dependent energy of a transfer is
// charged on the buses by package energy.
package mem

import "fmt"

const pageWords = 1024

// Memory is a sparse, paged, word-addressable memory. The zero value is an
// empty memory ready for use.
type Memory struct {
	pages map[uint32]*[pageWords]uint32
	// Reads and Writes count word accesses, for reporting.
	Reads, Writes uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{pages: map[uint32]*[pageWords]uint32{}}
}

// Reset clears every word back to zero while retaining page allocations, so
// a pooled simulation worker can reuse the memory without reallocating, and
// zeroes the access counters.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		*p = [pageWords]uint32{}
	}
	m.Reads, m.Writes = 0, 0
}

// AlignmentError reports a non-word-aligned access.
type AlignmentError struct {
	Addr uint32
	Op   string
}

func (e *AlignmentError) Error() string {
	return fmt.Sprintf("mem: misaligned %s at %#x", e.Op, e.Addr)
}

func (m *Memory) page(addr uint32, create bool) *[pageWords]uint32 {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = map[uint32]*[pageWords]uint32{}
	}
	idx := addr / 4 / pageWords
	p := m.pages[idx]
	if p == nil && create {
		p = new([pageWords]uint32)
		m.pages[idx] = p
	}
	return p
}

// LoadWord reads the 32-bit word at the given byte address.
func (m *Memory) LoadWord(addr uint32) (uint32, error) {
	if addr%4 != 0 {
		return 0, &AlignmentError{addr, "load"}
	}
	m.Reads++
	p := m.page(addr, false)
	if p == nil {
		return 0, nil
	}
	return p[addr/4%pageWords], nil
}

// StoreWord writes the 32-bit word at the given byte address.
func (m *Memory) StoreWord(addr, v uint32) error {
	if addr%4 != 0 {
		return &AlignmentError{addr, "store"}
	}
	m.Writes++
	m.page(addr, true)[addr/4%pageWords] = v
	return nil
}

// LoadImage copies words into memory starting at base (byte address).
func (m *Memory) LoadImage(base uint32, words []uint32) error {
	if base%4 != 0 {
		return &AlignmentError{base, "image load"}
	}
	for i, w := range words {
		if err := m.StoreWord(base+uint32(4*i), w); err != nil {
			return err
		}
	}
	// Image loading is initialisation, not simulated traffic.
	m.Writes -= uint64(len(words))
	return nil
}

// ReadWords copies n words starting at base into a fresh slice, without
// counting as simulated traffic.
func (m *Memory) ReadWords(base uint32, n int) ([]uint32, error) {
	out := make([]uint32, n)
	saved := m.Reads
	for i := range out {
		w, err := m.LoadWord(base + uint32(4*i))
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	m.Reads = saved
	return out, nil
}
