package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := New()
	if err := m.StoreWord(0x4000, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := m.LoadWord(0x4000)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("LoadWord = %#x, %v", v, err)
	}
}

func TestZeroFill(t *testing.T) {
	m := New()
	v, err := m.LoadWord(0x1_0000)
	if err != nil || v != 0 {
		t.Fatalf("uninitialised load = %#x, %v; want 0, nil", v, err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var m Memory
	if err := m.StoreWord(8, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.LoadWord(8); v != 7 {
		t.Fatalf("zero-value Memory store/load = %d", v)
	}
	var m2 Memory
	if v, err := m2.LoadWord(8); err != nil || v != 0 {
		t.Fatalf("zero-value Memory load = %d, %v", v, err)
	}
}

func TestMisaligned(t *testing.T) {
	m := New()
	if _, err := m.LoadWord(2); err == nil {
		t.Error("misaligned load succeeded")
	}
	if err := m.StoreWord(5, 1); err == nil {
		t.Error("misaligned store succeeded")
	}
	if err := m.LoadImage(1, []uint32{1}); err == nil {
		t.Error("misaligned image succeeded")
	}
}

func TestAccessCounters(t *testing.T) {
	m := New()
	_ = m.StoreWord(0, 1)
	_, _ = m.LoadWord(0)
	_, _ = m.LoadWord(4)
	if m.Writes != 1 || m.Reads != 2 {
		t.Errorf("counters = %d writes, %d reads; want 1, 2", m.Writes, m.Reads)
	}
	if err := m.LoadImage(0x100, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if m.Writes != 1 {
		t.Errorf("image load counted as traffic: %d writes", m.Writes)
	}
	if _, err := m.ReadWords(0x100, 3); err != nil {
		t.Fatal(err)
	}
	if m.Reads != 2 {
		t.Errorf("ReadWords counted as traffic: %d reads", m.Reads)
	}
}

func TestLoadImageAndReadWords(t *testing.T) {
	m := New()
	img := []uint32{10, 20, 30, 40}
	if err := m.LoadImage(0x2000, img); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadWords(0x2000, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range img {
		if got[i] != w {
			t.Errorf("word %d = %d, want %d", i, got[i], w)
		}
	}
}

func TestPageBoundaries(t *testing.T) {
	m := New()
	// Straddle a page boundary (pages are 1024 words = 4096 bytes).
	for _, addr := range []uint32{4092, 4096, 4100} {
		if err := m.StoreWord(addr, addr); err != nil {
			t.Fatal(err)
		}
	}
	for _, addr := range []uint32{4092, 4096, 4100} {
		if v, _ := m.LoadWord(addr); v != addr {
			t.Errorf("word at %#x = %#x", addr, v)
		}
	}
}

func TestStoreLoadProperty(t *testing.T) {
	m := New()
	f := func(addr, v uint32) bool {
		addr &^= 3
		if err := m.StoreWord(addr, v); err != nil {
			return false
		}
		got, err := m.LoadWord(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
