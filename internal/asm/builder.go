package asm

import (
	"fmt"

	"desmask/internal/isa"
)

// Builder constructs a Program directly, without going through assembly text.
// It is the compiler's backend interface: instructions and data words are
// appended programmatically, labels bind to the current position, and forward
// references to text labels (branches, jumps) are patched when Finish is
// called. Data symbols resolve immediately, so address-forming helpers
// (LoadAddr, MemDirect) require their symbol to be defined first — the
// compiler emits the data segment before any text.
//
// The pseudo-instruction expansions (li, la, direct-symbol loads/stores)
// reuse the assembler's exact sizing and encoding rules, so a Builder-built
// Program matches what assembling the equivalent text would produce.
type Builder struct {
	target   isa.Target
	textBase uint32
	dataBase uint32

	text  []isa.Inst
	lines []int
	line  int

	data []uint32

	symbols map[string]uint32
	fixups  []fixup
	errs    []string
}

type fixupKind int

const (
	fixBranch fixupKind = iota // Imm = word displacement from pc+4
	fixJump                    // Imm = absolute word index
)

type fixup struct {
	idx   int // index into text of the instruction to patch
	label string
	kind  fixupKind
}

// NewBuilder returns an empty builder for the default PISA target.
func NewBuilder() *Builder { return NewBuilderFor(isa.PISA) }

// NewBuilderFor returns an empty builder for the given ISA backend, with the
// default segment bases. Instruction validation and the pseudo-instruction
// expansions (LoadImm, LoadAddr, MemDirect, Nor) follow the target's
// encoding rules.
func NewBuilderFor(t isa.Target) *Builder {
	if t == nil {
		t = isa.PISA
	}
	return &Builder{
		target:   t,
		textBase: DefaultTextBase,
		dataBase: DefaultDataBase,
		symbols:  map[string]uint32{},
	}
}

// Target returns the builder's ISA backend.
func (b *Builder) Target() isa.Target { return b.target }

func (b *Builder) errorf(format string, args ...interface{}) {
	if len(b.errs) < 20 {
		b.errs = append(b.errs, fmt.Sprintf(format, args...))
	}
}

// SetLine records the 1-based source line attributed to subsequently emitted
// instructions (mirrors Program.Lines from the text assembler).
func (b *Builder) SetLine(n int) { b.line = n }

// Label binds a text label at the current end of text.
func (b *Builder) Label(name string) {
	if _, dup := b.symbols[name]; dup {
		b.errorf("duplicate label %q", name)
		return
	}
	b.symbols[name] = b.textBase + uint32(4*len(b.text))
}

// DataLabel binds a data label at the current end of data and returns its
// byte offset from the data base.
func (b *Builder) DataLabel(name string) uint32 {
	off := uint32(4 * len(b.data))
	if _, dup := b.symbols[name]; dup {
		b.errorf("duplicate label %q", name)
		return off
	}
	b.symbols[name] = b.dataBase + off
	return off
}

// Words appends initialized data words.
func (b *Builder) Words(vals ...uint32) { b.data = append(b.data, vals...) }

// Space appends n zero data words.
func (b *Builder) Space(n int) {
	for i := 0; i < n; i++ {
		b.data = append(b.data, 0)
	}
}

// Symbol reports a bound symbol's address.
func (b *Builder) Symbol(name string) (uint32, bool) {
	a, ok := b.symbols[name]
	return a, ok
}

func (b *Builder) push(in isa.Inst) {
	pc := b.textBase + uint32(4*len(b.text))
	if _, err := b.target.Encode(in, pc); err != nil {
		b.errorf("%v", err)
	}
	b.text = append(b.text, in)
	b.lines = append(b.lines, b.line)
}

// Inst appends one machine instruction, validating that it encodes.
func (b *Builder) Inst(in isa.Inst) { b.push(in) }

// LoadImm materialises a 32-bit constant into rt using the target's li
// expansion. Every expansion word carries the secure bit, as with the li.s
// pseudo-op.
func (b *Builder) LoadImm(rt isa.Reg, v int32, secure bool) {
	for _, in := range b.target.LoadImm(rt, v, secure) {
		b.push(in)
	}
}

// LoadAddr loads the address of a bound symbol into rt (the la expansion,
// every word carrying the secure bit).
func (b *Builder) LoadAddr(rt isa.Reg, sym string, secure bool) {
	addr, ok := b.symbols[sym]
	if !ok {
		b.errorf("LoadAddr: undefined symbol %q", sym)
		return
	}
	for _, in := range b.target.LoadAddr(rt, addr, secure) {
		b.push(in)
	}
}

// MemDirect emits a direct-symbol load/store (on PISA: lui $at, hi;
// op rt, lo($at)). On every target, the address-forming instruction stays
// insecure even for secure accesses: the paper does not consider data
// addresses sensitive, only key-derived ones (which go through secure
// address formation instead).
func (b *Builder) MemDirect(op isa.Opcode, rt isa.Reg, sym string, off int32, secure bool) {
	addr, ok := b.symbols[sym]
	if !ok {
		b.errorf("MemDirect: undefined symbol %q", sym)
		return
	}
	for _, in := range b.target.MemDirect(op, rt, addr+uint32(off), secure) {
		b.push(in)
	}
}

// Nor emits rd = ^(ra|rb), legalized per target: a single nor where the
// encoding has one, or an or + xori -1 pair (every word carrying the secure
// bit) where it does not.
func (b *Builder) Nor(rd, ra, rb isa.Reg, secure bool) {
	for _, in := range b.target.Nor(rd, ra, rb, secure) {
		b.push(in)
	}
}

// Branch emits a conditional branch to a label, patched at Finish.
func (b *Builder) Branch(op isa.Opcode, rs, rt isa.Reg, label string) {
	b.fixups = append(b.fixups, fixup{idx: len(b.text), label: label, kind: fixBranch})
	// Imm 0 is always encodable; the real displacement is checked on patch.
	b.push(isa.Inst{Op: op, Rs: rs, Rt: rt})
}

// Jump emits j/jal to a label, patched at Finish.
func (b *Builder) Jump(op isa.Opcode, label string) {
	b.fixups = append(b.fixups, fixup{idx: len(b.text), label: label, kind: fixJump})
	b.push(isa.Inst{Op: op})
}

// Finish resolves all pending label references and returns the Program.
func (b *Builder) Finish() (*Program, error) {
	for _, fx := range b.fixups {
		target, ok := b.symbols[fx.label]
		if !ok {
			b.errorf("undefined label %q", fx.label)
			continue
		}
		in := b.text[fx.idx]
		switch fx.kind {
		case fixBranch:
			next := b.textBase + uint32(4*fx.idx) + 4
			in.Imm = (int32(target) - int32(next)) / 4
		case fixJump:
			in.Imm = int32(target / 4)
		}
		if _, err := b.target.Encode(in, b.textBase+uint32(4*fx.idx)); err != nil {
			b.errorf("patching %q: %v", fx.label, err)
		}
		b.text[fx.idx] = in
	}
	if uint32(4*len(b.text))+b.textBase > b.dataBase {
		b.errorf("text segment (%d words) overflows into data base %#x", len(b.text), b.dataBase)
	}
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("asm builder: %s", b.errs[0])
	}
	p := &Program{
		TextBase: b.textBase,
		Text:     b.text,
		DataBase: b.dataBase,
		Data:     b.data,
		Symbols:  b.symbols,
		Lines:    b.lines,
		Entry:    b.textBase,
		Target:   b.target,
	}
	if addr, ok := p.Symbols["main"]; ok {
		p.Entry = addr
	}
	return p, nil
}
