// Package asm implements a two-pass assembler for the desmask ISA, including
// the paper's secure-instruction mnemonics (both the "slw"/"ssw" spelling used
// in Figure 4 of the paper and the canonical "lw.s"/"sw.s" suffix form), the
// usual MIPS-flavoured pseudo-instructions, and .text/.data layout.
package asm

import (
	"fmt"
	"sort"

	"desmask/internal/isa"
)

// Default segment bases. Text at zero, data on a separate 8 KiB boundary,
// both well inside the 15-bit immediate reach of a single ori so that `la`
// stays cheap for small images.
const (
	DefaultTextBase uint32 = 0x0000_0000
	DefaultDataBase uint32 = 0x0000_4000
)

// Program is the assembled, loadable image.
type Program struct {
	TextBase uint32
	Text     []isa.Inst // one entry per word at TextBase+4*i
	DataBase uint32
	Data     []uint32 // one entry per word at DataBase+4*i

	// Symbols maps every label to its byte address (text or data).
	Symbols map[string]uint32

	// Entry is the byte address execution starts at: the `main` label when
	// defined, otherwise TextBase.
	Entry uint32

	// Lines maps a text word index to the 1-based source line that produced
	// it, for diagnostics and trace annotation.
	Lines []int

	// Target is the ISA backend the program was built for. nil means the
	// default PISA target (every program predates pluggable backends or came
	// from the PISA-only text assembler); consumers go through
	// TargetOrDefault.
	Target isa.Target
}

// TargetOrDefault returns the program's ISA backend, defaulting to PISA.
func (p *Program) TargetOrDefault() isa.Target {
	if p.Target == nil {
		return isa.PISA
	}
	return p.Target
}

// SymbolAt returns the label with the highest address not exceeding addr
// within the segment that contains addr, for annotating traces. ok is false
// when no label precedes addr.
func (p *Program) SymbolAt(addr uint32) (name string, ok bool) {
	best := ""
	var bestAddr uint32
	for n, a := range p.Symbols {
		if a <= addr && (best == "" || a > bestAddr || (a == bestAddr && n < best)) {
			best, bestAddr = n, a
		}
	}
	return best, best != ""
}

// SortedSymbols returns the symbol table as (name, address) pairs ordered by
// address then name, for deterministic listings.
func (p *Program) SortedSymbols() []Symbol {
	out := make([]Symbol, 0, len(p.Symbols))
	for n, a := range p.Symbols {
		out = append(out, Symbol{Name: n, Addr: a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Addr != out[j].Addr {
			return out[i].Addr < out[j].Addr
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Symbol is one entry of a sorted symbol listing.
type Symbol struct {
	Name string
	Addr uint32
}

// TextEnd returns the first byte address past the text segment.
func (p *Program) TextEnd() uint32 { return p.TextBase + uint32(4*len(p.Text)) }

// DataEnd returns the first byte address past the data segment.
func (p *Program) DataEnd() uint32 { return p.DataBase + uint32(4*len(p.Data)) }

// InstAt returns the instruction at byte address addr.
func (p *Program) InstAt(addr uint32) (isa.Inst, error) {
	if addr < p.TextBase || addr >= p.TextEnd() || addr%4 != 0 {
		return isa.Inst{}, fmt.Errorf("asm: address %#x outside text segment", addr)
	}
	return p.Text[(addr-p.TextBase)/4], nil
}

// Listing renders a human-readable disassembly listing with labels.
func (p *Program) Listing() string {
	byAddr := map[uint32][]string{}
	for n, a := range p.Symbols {
		byAddr[a] = append(byAddr[a], n)
	}
	for _, ns := range byAddr {
		sort.Strings(ns)
	}
	var b []byte
	for i, in := range p.Text {
		addr := p.TextBase + uint32(4*i)
		for _, n := range byAddr[addr] {
			b = append(b, fmt.Sprintf("%s:\n", n)...)
		}
		b = append(b, fmt.Sprintf("  %#06x  %v\n", addr, in)...)
	}
	return string(b)
}
