package asm

import (
	"fmt"
	"strconv"
	"strings"

	"desmask/internal/isa"
)

// Options configures segment placement.
type Options struct {
	TextBase uint32 // defaults to DefaultTextBase
	DataBase uint32 // defaults to DefaultDataBase
}

// Assemble translates assembly source into a loadable Program using default
// options.
func Assemble(src string) (*Program, error) {
	return AssembleWith(src, Options{})
}

// AssembleWith translates assembly source with explicit options.
func AssembleWith(src string, opt Options) (*Program, error) {
	if opt.TextBase%4 != 0 || opt.DataBase%4 != 0 {
		return nil, fmt.Errorf("asm: segment bases must be word-aligned")
	}
	a := &assembler{
		opt:     opt,
		symbols: map[string]uint32{},
		symLine: map[string]int{},
	}
	if a.opt.TextBase == 0 && a.opt.DataBase == 0 {
		a.opt.TextBase = DefaultTextBase
		a.opt.DataBase = DefaultDataBase
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	p, err := a.emit()
	if err != nil {
		return nil, err
	}
	return p, nil
}

// stmt is one parsed source statement (after label extraction).
type stmt struct {
	line    int
	section string // "text" or "data"
	// For text: mnemonic + operands. For data: directive + operands.
	mnem string
	args []string
	// size in words, fixed during parsing so pass-1 layout is exact.
	size uint32
	addr uint32 // assigned during layout
}

type assembler struct {
	opt     Options
	stmts   []stmt
	symbols map[string]uint32
	symLine map[string]int
	// label placements recorded during parse: name -> (section, stmt index)
	labels []labelDef
	errs   []string
}

type labelDef struct {
	name    string
	line    int
	section string
	// index of the following statement within that section's statement
	// order; the label binds to the address of that statement (or segment
	// end if it is past the last statement).
	ordinal int
}

func (a *assembler) errorf(line int, format string, args ...interface{}) {
	a.errs = append(a.errs, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (a *assembler) failed() error {
	if len(a.errs) == 0 {
		return nil
	}
	const maxShown = 20
	shown := a.errs
	suffix := ""
	if len(shown) > maxShown {
		suffix = fmt.Sprintf("\n... and %d more errors", len(shown)-maxShown)
		shown = shown[:maxShown]
	}
	return fmt.Errorf("asm: %s%s", strings.Join(shown, "\n"), suffix)
}

// stripComment removes # and // comments.
func stripComment(s string) string {
	if i := strings.IndexByte(s, '#'); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func (a *assembler) parse(src string) error {
	section := "text"
	counts := map[string]int{}
	for ln, raw := range strings.Split(src, "\n") {
		line := ln + 1
		s := strings.TrimSpace(stripComment(raw))
		if s == "" {
			continue
		}
		// Labels (possibly several on one line).
		for {
			i := strings.IndexByte(s, ':')
			if i < 0 {
				break
			}
			name := strings.TrimSpace(s[:i])
			if !isIdent(name) {
				break
			}
			if _, dup := a.symLine[name]; dup {
				a.errorf(line, "duplicate label %q (first defined on line %d)", name, a.symLine[name])
			} else {
				a.symLine[name] = line
				a.labels = append(a.labels, labelDef{name, line, section, counts[section]})
			}
			s = strings.TrimSpace(s[i+1:])
		}
		if s == "" {
			continue
		}
		mnem, rest := splitMnemonic(s)
		if strings.HasPrefix(mnem, ".") {
			switch mnem {
			case ".text":
				section = "text"
				continue
			case ".data":
				section = "data"
				continue
			case ".globl", ".global", ".ent", ".end":
				continue // accepted and ignored
			}
		}
		st := stmt{line: line, section: section, mnem: mnem, args: splitArgs(rest)}
		var err error
		st.size, err = a.sizeOf(&st)
		if err != nil {
			a.errorf(line, "%v", err)
			continue
		}
		if section == "text" && strings.HasPrefix(mnem, ".") && mnem != ".align" {
			a.errorf(line, "data directive %s in .text section", mnem)
			continue
		}
		a.stmts = append(a.stmts, st)
		counts[section]++
		// Relocate pending labels bound at this ordinal: nothing to do; the
		// ordinal recorded above already points here.
	}
	return a.failed()
}

// splitMnemonic separates the first whitespace-delimited token.
func splitMnemonic(s string) (string, string) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return strings.ToLower(s[:i]), strings.TrimSpace(s[i:])
		}
	}
	return strings.ToLower(s), ""
}

// splitArgs splits comma-separated operands.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// parseNum parses a decimal, hex (0x), octal (0o), binary (0b) or character
// ('c') literal, with optional leading minus.
func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body := s[1 : len(s)-1]
		if len(body) == 1 {
			return int64(body[0]), nil
		}
		return 0, fmt.Errorf("bad character literal %s", s)
	}
	return strconv.ParseInt(s, 0, 64)
}

// mnemonic resolution ------------------------------------------------------

// resolveMnemonic maps a source mnemonic to (base, secure). Resolution order:
// exact machine op or pseudo-op; trailing ".s"; leading "s" on a securable
// base (the paper's slw/ssw/sxor/smove spellings).
func resolveMnemonic(m string) (base string, secure bool, ok bool) {
	if isBaseMnemonic(m) {
		return m, false, true
	}
	if strings.HasSuffix(m, ".s") {
		b := strings.TrimSuffix(m, ".s")
		if isBaseMnemonic(b) {
			return b, true, true
		}
		return "", false, false
	}
	if len(m) > 1 && m[0] == 's' && isBaseMnemonic(m[1:]) && securableMnemonic(m[1:]) {
		return m[1:], true, true
	}
	return "", false, false
}

var pseudoOps = map[string]bool{
	"nop": true, "move": true, "li": true, "la": true, "b": true,
	"beqz": true, "bnez": true, "blt": true, "bge": true, "bgt": true, "ble": true,
	"not": true, "neg": true,
}

func isBaseMnemonic(m string) bool {
	if _, ok := isa.OpcodeByName(m); ok {
		return true
	}
	return pseudoOps[m]
}

// securableMnemonic reports whether the base may carry a secure marker.
func securableMnemonic(m string) bool {
	if op, ok := isa.OpcodeByName(m); ok {
		return op.Securable()
	}
	switch m {
	case "move", "li", "la": // secure assignment building blocks
		return true
	}
	return false
}

// sizing -------------------------------------------------------------------

// sizeOf fixes the word size of a statement during pass 1 so that layout is
// exact. Pseudo-instruction sizes never depend on symbol addresses (worst
// case is assumed where needed).
func (a *assembler) sizeOf(st *stmt) (uint32, error) {
	if strings.HasPrefix(st.mnem, ".") {
		switch st.mnem {
		case ".word":
			if len(st.args) == 0 {
				return 0, fmt.Errorf(".word needs at least one value")
			}
			return uint32(len(st.args)), nil
		case ".space":
			if len(st.args) != 1 {
				return 0, fmt.Errorf(".space needs a byte count")
			}
			n, err := parseNum(st.args[0])
			if err != nil || n < 0 {
				return 0, fmt.Errorf("bad .space size %q", st.args[0])
			}
			return uint32((n + 3) / 4), nil
		case ".align":
			// Alignment is resolved at layout; record requested alignment in
			// args and reserve no fixed size. Sizes must be exact, so we
			// only support word alignment (already guaranteed) and reject
			// larger ones to keep pass-1 layout deterministic.
			if len(st.args) == 1 {
				if n, err := parseNum(st.args[0]); err == nil && n <= 2 {
					return 0, nil
				}
			}
			return 0, fmt.Errorf(".align only supports alignments up to 4 bytes (words are always aligned)")
		}
		return 0, fmt.Errorf("unknown directive %s", st.mnem)
	}
	if st.section != "text" {
		return 0, fmt.Errorf("instruction %q in .data section", st.mnem)
	}
	base, _, ok := resolveMnemonic(st.mnem)
	if !ok {
		return 0, fmt.Errorf("unknown mnemonic %q", st.mnem)
	}
	switch base {
	case "li":
		if len(st.args) != 2 {
			return 0, fmt.Errorf("li needs 2 operands")
		}
		v, err := parseNum(st.args[1])
		if err != nil {
			return 0, fmt.Errorf("li immediate %q: %v", st.args[1], err)
		}
		return uint32(len(liExpansion(int32(v)))), nil
	case "la":
		return 2, nil
	case "blt", "bge", "bgt", "ble":
		return 2, nil
	case "lw", "sw":
		// Direct-symbol form (`lw $2, i` per paper Fig. 4) costs 2 words;
		// the offset(base) form costs 1.
		if len(st.args) == 2 && !strings.Contains(st.args[1], "(") {
			if _, err := parseNum(st.args[1]); err != nil {
				return 2, nil
			}
		}
		return 1, nil
	default:
		return 1, nil
	}
}

// liExpansion returns the opcode skeleton used to materialise v, sized 1, 2
// or 5 words.
type liStep struct {
	op    isa.Opcode
	imm   int32
	useRt bool // second operand is rt (accumulate) rather than $zero
}

func liExpansion(v int32) []liStep {
	if v >= isa.MinImm && v <= isa.MaxImm {
		return []liStep{{op: isa.OpAddiu, imm: v}}
	}
	if v >= 0 && v <= isa.MaxUImm {
		return []liStep{{op: isa.OpOri, imm: v}}
	}
	u := uint32(v)
	if u < 1<<30 {
		return []liStep{
			{op: isa.OpLui, imm: int32(u >> 15)},
			{op: isa.OpOri, imm: int32(u & 0x7fff), useRt: true},
		}
	}
	// Full 32-bit constant: build from the top in three ori/sll pairs.
	return []liStep{
		{op: isa.OpOri, imm: int32(u >> 17)},
		{op: isa.OpSll, imm: 2, useRt: true},
		{op: isa.OpOri, imm: int32(u >> 15 & 0x3), useRt: true},
		{op: isa.OpSll, imm: 15, useRt: true},
		{op: isa.OpOri, imm: int32(u & 0x7fff), useRt: true},
	}
}

// layout -------------------------------------------------------------------

func (a *assembler) layout() error {
	textAddr := a.opt.TextBase
	dataAddr := a.opt.DataBase
	ordinals := map[string]int{}
	// addrs[section][ordinal] = address of that statement.
	addrs := map[string][]uint32{}
	ends := map[string]uint32{"text": textAddr, "data": dataAddr}
	for i := range a.stmts {
		st := &a.stmts[i]
		switch st.section {
		case "text":
			st.addr = textAddr
			textAddr += 4 * st.size
			ends["text"] = textAddr
		case "data":
			st.addr = dataAddr
			dataAddr += 4 * st.size
			ends["data"] = dataAddr
		}
		addrs[st.section] = append(addrs[st.section], st.addr)
		ordinals[st.section]++
	}
	if a.opt.TextBase < a.opt.DataBase && textAddr > a.opt.DataBase {
		return fmt.Errorf("asm: text segment (%d words) overflows into data base %#x", (textAddr-a.opt.TextBase)/4, a.opt.DataBase)
	}
	for _, l := range a.labels {
		secAddrs := addrs[l.section]
		if l.ordinal < len(secAddrs) {
			a.symbols[l.name] = secAddrs[l.ordinal]
		} else {
			a.symbols[l.name] = ends[l.section]
		}
	}
	return nil
}

// emission -----------------------------------------------------------------

func (a *assembler) emit() (*Program, error) {
	p := &Program{
		TextBase: a.opt.TextBase,
		DataBase: a.opt.DataBase,
		Symbols:  a.symbols,
	}
	for i := range a.stmts {
		st := &a.stmts[i]
		if st.section == "data" || strings.HasPrefix(st.mnem, ".") {
			a.emitData(p, st)
			continue
		}
		a.emitText(p, st)
	}
	if err := a.failed(); err != nil {
		return nil, err
	}
	p.Entry = p.TextBase
	if addr, ok := p.Symbols["main"]; ok {
		p.Entry = addr
	}
	return p, nil
}

func (a *assembler) emitData(p *Program, st *stmt) {
	switch st.mnem {
	case ".word":
		for _, arg := range st.args {
			if v, err := parseNum(arg); err == nil {
				p.Data = append(p.Data, uint32(v))
			} else if addr, ok := a.symbols[arg]; ok {
				p.Data = append(p.Data, addr)
			} else {
				a.errorf(st.line, "bad .word value %q", arg)
				p.Data = append(p.Data, 0)
			}
		}
	case ".space":
		for i := uint32(0); i < st.size; i++ {
			p.Data = append(p.Data, 0)
		}
	case ".align":
		// nothing: words are always aligned
	default:
		a.errorf(st.line, "unknown directive %s", st.mnem)
	}
}

func (a *assembler) push(p *Program, st *stmt, in isa.Inst) {
	if _, err := isa.Encode(in); err != nil {
		a.errorf(st.line, "%v", err)
	}
	p.Text = append(p.Text, in)
	p.Lines = append(p.Lines, st.line)
}

// reg parses a register operand.
func (a *assembler) reg(st *stmt, s string) isa.Reg {
	r, ok := isa.RegByName(s)
	if !ok {
		a.errorf(st.line, "bad register %q", s)
	}
	return r
}

// immOrSym parses an immediate or resolves a symbol to its address.
func (a *assembler) immOrSym(st *stmt, s string) int32 {
	if v, err := parseNum(s); err == nil {
		return int32(v)
	}
	if addr, ok := a.symbols[s]; ok {
		return int32(addr)
	}
	a.errorf(st.line, "undefined symbol or bad immediate %q", s)
	return 0
}

// branchDisp computes the word displacement to a label from the instruction
// that will sit at the current end of text.
func (a *assembler) branchDisp(p *Program, st *stmt, label string) int32 {
	target, ok := a.symbols[label]
	if !ok {
		if v, err := parseNum(label); err == nil {
			return int32(v) // numeric displacement, used in tests
		}
		a.errorf(st.line, "undefined branch target %q", label)
		return 0
	}
	next := p.TextBase + uint32(4*len(p.Text)) + 4
	return (int32(target) - int32(next)) / 4
}

// jumpTarget computes the absolute word index of a label.
func (a *assembler) jumpTarget(st *stmt, label string) int32 {
	if target, ok := a.symbols[label]; ok {
		return int32(target / 4)
	}
	if v, err := parseNum(label); err == nil {
		return int32(uint32(v) / 4)
	}
	a.errorf(st.line, "undefined jump target %q", label)
	return 0
}

// memOperand parses "imm(reg)", "(reg)", "sym" or "imm"; the last two forms
// report direct==true.
func parseMemOperand(s string) (off string, base string, direct bool) {
	i := strings.IndexByte(s, '(')
	if i < 0 {
		return s, "", true
	}
	j := strings.IndexByte(s, ')')
	if j < i {
		return s, "", true
	}
	off = strings.TrimSpace(s[:i])
	if off == "" {
		off = "0"
	}
	return off, strings.TrimSpace(s[i+1 : j]), false
}

func (a *assembler) wantArgs(st *stmt, n int) bool {
	if len(st.args) != n {
		a.errorf(st.line, "%s needs %d operands, got %d", st.mnem, n, len(st.args))
		return false
	}
	return true
}

// splitAddr splits an absolute address for a lui+ori / lui+mem pair.
func splitAddrForOri(addr uint32) (hi, lo int32) {
	return int32(addr >> 15), int32(addr & 0x7fff)
}

// splitAddrForMem splits an address so lo fits the signed 15-bit memory
// displacement.
func splitAddrForMem(addr uint32) (hi, lo int32) {
	hi = int32((addr + 0x4000) >> 15)
	lo = int32(addr) - hi<<15
	return hi, lo
}

func (a *assembler) emitText(p *Program, st *stmt) {
	startLen := len(p.Text)
	base, secure, ok := resolveMnemonic(st.mnem)
	if !ok {
		a.errorf(st.line, "unknown mnemonic %q", st.mnem)
		return
	}
	if op, isOp := isa.OpcodeByName(base); isOp {
		a.emitMachineOp(p, st, op, secure)
	} else {
		a.emitPseudo(p, st, base, secure)
	}
	if got := uint32(len(p.Text) - startLen); got != st.size {
		// Internal consistency check: pass-1 size must match emission.
		a.errorf(st.line, "internal: statement size %d != planned %d", got, st.size)
	}
}

func (a *assembler) emitMachineOp(p *Program, st *stmt, op isa.Opcode, secure bool) {
	in := isa.Inst{Op: op, Secure: secure}
	switch op.Format() {
	case isa.FmtR:
		if !a.wantArgs(st, 3) {
			a.pad(p, st)
			return
		}
		in.Rd, in.Rs, in.Rt = a.reg(st, st.args[0]), a.reg(st, st.args[1]), a.reg(st, st.args[2])
	case isa.FmtRShift:
		if !a.wantArgs(st, 3) {
			a.pad(p, st)
			return
		}
		in.Rd, in.Rt, in.Imm = a.reg(st, st.args[0]), a.reg(st, st.args[1]), a.immOrSym(st, st.args[2])
	case isa.FmtRJump:
		if !a.wantArgs(st, 1) {
			a.pad(p, st)
			return
		}
		in.Rs = a.reg(st, st.args[0])
	case isa.FmtI:
		if !a.wantArgs(st, 3) {
			a.pad(p, st)
			return
		}
		in.Rt, in.Rs, in.Imm = a.reg(st, st.args[0]), a.reg(st, st.args[1]), a.immOrSym(st, st.args[2])
	case isa.FmtILui:
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		in.Rt, in.Imm = a.reg(st, st.args[0]), a.immOrSym(st, st.args[1])
	case isa.FmtIMem:
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		in.Rt = a.reg(st, st.args[0])
		off, baseReg, direct := parseMemOperand(st.args[1])
		if direct {
			if v, err := parseNum(off); err == nil {
				// Absolute numeric address off $zero.
				in.Rs, in.Imm = isa.Zero, int32(v)
				a.push(p, st, in)
				return
			}
			// Direct symbol: lui $at, hi; op rt, lo($at). The address
			// computation itself is not sensitive (the paper: "revealing
			// the address of data is not considered as a problem"), so the
			// lui stays insecure even for slw/ssw.
			addr, ok := a.symbols[off]
			if !ok {
				a.errorf(st.line, "undefined symbol %q", off)
				a.pad(p, st)
				return
			}
			hi, lo := splitAddrForMem(addr)
			a.push(p, st, isa.Inst{Op: isa.OpLui, Rt: isa.AT, Imm: hi})
			in.Rs, in.Imm = isa.AT, lo
			a.push(p, st, in)
			return
		}
		in.Rs, in.Imm = a.reg(st, baseReg), a.immOrSym(st, off)
	case isa.FmtIBranch:
		if op == isa.OpBlez || op == isa.OpBgtz {
			if !a.wantArgs(st, 2) {
				a.pad(p, st)
				return
			}
			in.Rs = a.reg(st, st.args[0])
			in.Imm = a.branchDisp(p, st, st.args[1])
		} else {
			if !a.wantArgs(st, 3) {
				a.pad(p, st)
				return
			}
			in.Rs, in.Rt = a.reg(st, st.args[0]), a.reg(st, st.args[1])
			in.Imm = a.branchDisp(p, st, st.args[2])
		}
	case isa.FmtJ:
		if !a.wantArgs(st, 1) {
			a.pad(p, st)
			return
		}
		in.Imm = a.jumpTarget(st, st.args[0])
	case isa.FmtNone:
		if !a.wantArgs(st, 0) {
			a.pad(p, st)
			return
		}
	}
	a.push(p, st, in)
}

// pad fills the statement's planned extent with nops so that layout stays
// consistent after an error was reported for it.
func (a *assembler) pad(p *Program, st *stmt) {
	end := (st.addr-p.TextBase)/4 + st.size
	for uint32(len(p.Text)) < end {
		p.Text = append(p.Text, isa.Nop())
		p.Lines = append(p.Lines, st.line)
	}
}

func (a *assembler) emitPseudo(p *Program, st *stmt, base string, secure bool) {
	switch base {
	case "nop":
		if !a.wantArgs(st, 0) {
			a.pad(p, st)
			return
		}
		a.push(p, st, isa.Nop())
	case "move":
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		a.push(p, st, isa.Inst{Op: isa.OpAddu, Secure: secure,
			Rd: a.reg(st, st.args[0]), Rs: a.reg(st, st.args[1]), Rt: isa.Zero})
	case "not":
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		a.push(p, st, isa.Inst{Op: isa.OpNor, Secure: secure,
			Rd: a.reg(st, st.args[0]), Rs: a.reg(st, st.args[1]), Rt: isa.Zero})
	case "neg":
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		a.push(p, st, isa.Inst{Op: isa.OpSubu, Secure: secure,
			Rd: a.reg(st, st.args[0]), Rs: isa.Zero, Rt: a.reg(st, st.args[1])})
	case "li":
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		rt := a.reg(st, st.args[0])
		v, err := parseNum(st.args[1])
		if err != nil {
			a.errorf(st.line, "li immediate %q: %v", st.args[1], err)
			a.pad(p, st)
			return
		}
		for _, step := range liExpansion(int32(v)) {
			in := isa.Inst{Op: step.op, Secure: secure, Imm: step.imm}
			switch step.op {
			case isa.OpLui:
				in.Rt = rt
			case isa.OpSll:
				in.Rd, in.Rt = rt, rt
			default: // addiu/ori
				in.Rt = rt
				if step.useRt {
					in.Rs = rt
				} else {
					in.Rs = isa.Zero
				}
			}
			a.push(p, st, in)
		}
	case "la":
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		rt := a.reg(st, st.args[0])
		addr, ok := a.symbols[st.args[1]]
		if !ok {
			if v, err := parseNum(st.args[1]); err == nil {
				addr = uint32(v)
			} else {
				a.errorf(st.line, "undefined symbol %q", st.args[1])
				a.pad(p, st)
				return
			}
		}
		hi, lo := splitAddrForOri(addr)
		a.push(p, st, isa.Inst{Op: isa.OpLui, Rt: rt, Imm: hi, Secure: secure})
		a.push(p, st, isa.Inst{Op: isa.OpOri, Rt: rt, Rs: rt, Imm: lo, Secure: secure})
	case "b":
		if !a.wantArgs(st, 1) {
			a.pad(p, st)
			return
		}
		a.push(p, st, isa.Inst{Op: isa.OpBeq, Rs: isa.Zero, Rt: isa.Zero,
			Imm: a.branchDisp(p, st, st.args[0])})
	case "beqz", "bnez":
		if !a.wantArgs(st, 2) {
			a.pad(p, st)
			return
		}
		op := isa.OpBeq
		if base == "bnez" {
			op = isa.OpBne
		}
		a.push(p, st, isa.Inst{Op: op, Rs: a.reg(st, st.args[0]), Rt: isa.Zero,
			Imm: a.branchDisp(p, st, st.args[1])})
	case "blt", "bge", "bgt", "ble":
		if !a.wantArgs(st, 3) {
			a.pad(p, st)
			return
		}
		rs, rt := a.reg(st, st.args[0]), a.reg(st, st.args[1])
		// blt: slt $at,rs,rt ; bne $at,$0  — bgt/ble swap operands.
		if base == "bgt" || base == "ble" {
			rs, rt = rt, rs
		}
		a.push(p, st, isa.Inst{Op: isa.OpSlt, Rd: isa.AT, Rs: rs, Rt: rt})
		bop := isa.OpBne
		if base == "bge" || base == "ble" {
			bop = isa.OpBeq
		}
		a.push(p, st, isa.Inst{Op: bop, Rs: isa.AT, Rt: isa.Zero,
			Imm: a.branchDisp(p, st, st.args[2])})
	default:
		a.errorf(st.line, "unknown pseudo-instruction %q", base)
		a.pad(p, st)
	}
}
