package asm

import (
	"strings"
	"testing"

	"desmask/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestBasicProgram(t *testing.T) {
	p := mustAssemble(t, `
		.text
main:
		addu $t0, $t1, $t2
		xor  $s0, $s1, $s2
		halt
	`)
	if len(p.Text) != 3 {
		t.Fatalf("got %d instructions, want 3", len(p.Text))
	}
	want := []isa.Inst{
		{Op: isa.OpAddu, Rd: isa.T0, Rs: isa.T1, Rt: isa.T2},
		{Op: isa.OpXor, Rd: isa.S0, Rs: isa.S1, Rt: isa.S2},
		{Op: isa.OpHalt},
	}
	for i, w := range want {
		if p.Text[i] != w {
			t.Errorf("inst %d = %v, want %v", i, p.Text[i], w)
		}
	}
	if p.Entry != p.Symbols["main"] {
		t.Errorf("entry %#x != main %#x", p.Entry, p.Symbols["main"])
	}
}

func TestSecureMnemonics(t *testing.T) {
	p := mustAssemble(t, `
		slw   $t0, 0($t1)
		lw.s  $t0, 4($t1)
		ssw   $t0, 0($t1)
		sxor  $t0, $t1, $t2
		xor.s $t0, $t1, $t2
		smove $t0, $t1
		ssll  $t0, $t1, 3
		lw    $t0, 0($t1)
	`)
	secure := []bool{true, true, true, true, true, true, true, false}
	if len(p.Text) != len(secure) {
		t.Fatalf("got %d instructions, want %d", len(p.Text), len(secure))
	}
	for i, want := range secure {
		if p.Text[i].Secure != want {
			t.Errorf("inst %d (%v) secure = %v, want %v", i, p.Text[i], p.Text[i].Secure, want)
		}
	}
	// smove expands to secure addu with $zero.
	if in := p.Text[5]; in.Op != isa.OpAddu || in.Rt != isa.Zero || !in.Secure {
		t.Errorf("smove = %v, want secure addu rd, rs, $zero", in)
	}
}

func TestSecureMnemonicAmbiguity(t *testing.T) {
	// "sll", "slt", "sra", "srl", "sw", "subu" must parse as base ops, not
	// secure "ll"/"lt"/"ra"/"rl"/"w"/"ubu".
	p := mustAssemble(t, `
		sll  $t0, $t1, 1
		slt  $t0, $t1, $t2
		sra  $t0, $t1, 1
		srl  $t0, $t1, 1
		sw   $t0, 0($sp)
		subu $t0, $t1, $t2
	`)
	for i, in := range p.Text {
		if in.Secure {
			t.Errorf("inst %d (%v) wrongly parsed as secure", i, in)
		}
	}
	if p.Text[0].Op != isa.OpSll || p.Text[1].Op != isa.OpSlt {
		t.Error("sll/slt misresolved")
	}
}

func TestBranchesAndLabels(t *testing.T) {
	p := mustAssemble(t, `
main:	beq  $t0, $zero, done
		addu $t1, $t1, $t2
loop:	bne  $t0, $t1, loop
		b    main
done:	halt
	`)
	// beq at word 0: done is word 4; disp = 4 - (0+1) = 3.
	if p.Text[0].Imm != 3 {
		t.Errorf("forward branch disp = %d, want 3", p.Text[0].Imm)
	}
	// bne at word 2 targeting itself: disp = 2 - 3 = -1.
	if p.Text[2].Imm != -1 {
		t.Errorf("self branch disp = %d, want -1", p.Text[2].Imm)
	}
	// b main at word 3: disp = 0 - 4 = -4, as beq $0,$0.
	if in := p.Text[3]; in.Op != isa.OpBeq || in.Rs != isa.Zero || in.Imm != -4 {
		t.Errorf("b pseudo = %v, want beq $zero,$zero,-4", in)
	}
}

func TestJumpTargets(t *testing.T) {
	p := mustAssemble(t, `
		j    end
		jal  end
		nop
end:	jr   $ra
	`)
	if p.Text[0].Imm != 3 || p.Text[1].Imm != 3 {
		t.Errorf("jump targets = %d, %d; want word index 3", p.Text[0].Imm, p.Text[1].Imm)
	}
}

func TestDataSegment(t *testing.T) {
	p := mustAssemble(t, `
		.data
tab:	.word 1, 2, 0x10, -1
buf:	.space 8
ptr:	.word tab
		.text
main:	la $t0, tab
		halt
	`)
	if got := p.Symbols["tab"]; got != DefaultDataBase {
		t.Errorf("tab at %#x, want %#x", got, DefaultDataBase)
	}
	if got := p.Symbols["buf"]; got != DefaultDataBase+16 {
		t.Errorf("buf at %#x, want %#x", got, DefaultDataBase+16)
	}
	if got := p.Symbols["ptr"]; got != DefaultDataBase+24 {
		t.Errorf("ptr at %#x, want %#x", got, DefaultDataBase+24)
	}
	wantData := []uint32{1, 2, 0x10, 0xffffffff, 0, 0, DefaultDataBase}
	if len(p.Data) != len(wantData) {
		t.Fatalf("data = %v, want %v", p.Data, wantData)
	}
	for i, w := range wantData {
		if p.Data[i] != w {
			t.Errorf("data[%d] = %#x, want %#x", i, p.Data[i], w)
		}
	}
	// la expands to lui+ori producing the symbol address.
	lui, ori := p.Text[0], p.Text[1]
	if lui.Op != isa.OpLui || ori.Op != isa.OpOri {
		t.Fatalf("la expansion = %v; %v", lui, ori)
	}
	addr := uint32(lui.Imm)<<15 | uint32(ori.Imm)
	if addr != DefaultDataBase {
		t.Errorf("la materialises %#x, want %#x", addr, DefaultDataBase)
	}
}

func TestDirectSymbolLoadStore(t *testing.T) {
	// The paper's Figure 4 uses `lw $2, i` and `sw $3, i` forms.
	p := mustAssemble(t, `
		.data
i:		.word 42
		.text
main:	lw  $v0, i
		sw  $v1, i
		slw $t0, i
		halt
	`)
	// Each direct form is lui $at + mem op.
	if len(p.Text) != 7 {
		t.Fatalf("got %d instructions, want 7", len(p.Text))
	}
	if p.Text[0].Op != isa.OpLui || p.Text[0].Rt != isa.AT {
		t.Errorf("direct lw prefix = %v, want lui $at", p.Text[0])
	}
	if in := p.Text[1]; in.Op != isa.OpLw || in.Rs != isa.AT {
		t.Errorf("direct lw = %v", in)
	}
	addr := uint32(p.Text[0].Imm)<<15 + uint32(p.Text[1].Imm)
	if addr != p.Symbols["i"] {
		t.Errorf("direct lw address %#x, want %#x", addr, p.Symbols["i"])
	}
	// Secure direct load: the lui (address formation) stays insecure, the
	// lw carries the secure bit.
	if p.Text[4].Secure {
		t.Error("address-forming lui must not be secure")
	}
	if !p.Text[5].Secure || p.Text[5].Op != isa.OpLw {
		t.Errorf("slw direct = %v, want secure lw", p.Text[5])
	}
}

func TestLiExpansions(t *testing.T) {
	cases := []struct {
		val  int64
		size int
	}{
		{0, 1}, {1, 1}, {-1, 1}, {isa.MaxImm, 1}, {isa.MinImm, 1},
		{isa.MaxImm + 1, 1}, // still single ori (unsigned)
		{isa.MaxUImm, 1},
		{isa.MaxUImm + 1, 2},
		{1 << 29, 2},
		{1<<30 - 1, 2},
		{1 << 30, 5},
		{-2147483648, 5},
		{-40000, 5},
	}
	for _, c := range cases {
		src := "li $t0, " + itoa(c.val) + "\nhalt\n"
		p := mustAssemble(t, src)
		if got := len(p.Text) - 1; got != c.size {
			t.Errorf("li %d expanded to %d instructions, want %d", c.val, got, c.size)
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestConditionalBranchPseudos(t *testing.T) {
	p := mustAssemble(t, `
main:	blt $t0, $t1, out
		bge $t0, $t1, out
		bgt $t0, $t1, out
		ble $t0, $t1, out
out:	halt
	`)
	if len(p.Text) != 9 {
		t.Fatalf("got %d instructions, want 9", len(p.Text))
	}
	// blt: slt $at, $t0, $t1 ; bne $at, $zero
	if in := p.Text[0]; in.Op != isa.OpSlt || in.Rd != isa.AT || in.Rs != isa.T0 || in.Rt != isa.T1 {
		t.Errorf("blt slt = %v", in)
	}
	if in := p.Text[1]; in.Op != isa.OpBne {
		t.Errorf("blt branch = %v", in)
	}
	// bgt swaps: slt $at, $t1, $t0 ; bne
	if in := p.Text[4]; in.Rs != isa.T1 || in.Rt != isa.T0 {
		t.Errorf("bgt slt = %v", in)
	}
	// bge: slt ; beq
	if in := p.Text[3]; in.Op != isa.OpBeq {
		t.Errorf("bge branch = %v", in)
	}
}

func TestComments(t *testing.T) {
	p := mustAssemble(t, `
		# full line comment
		addu $t0, $t1, $t2   # trailing
		xor $t0, $t1, $t2    // c++ style
	`)
	if len(p.Text) != 2 {
		t.Fatalf("got %d instructions, want 2", len(p.Text))
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"unknown mnemonic", "frob $t0", "unknown mnemonic"},
		{"bad register", "addu $t0, $zz, $t1", "bad register"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"undefined branch", "beq $t0, $t1, nowhere", "undefined branch target"},
		{"undefined symbol", "la $t0, nowhere", "undefined symbol"},
		{"word in text", ".text\n.word 5", "data directive"},
		{"instruction in data", ".data\naddu $t0, $t1, $t2", "instruction"},
		{"arity", "addu $t0, $t1", "needs 3 operands"},
		{"shift range", "sll $t0, $t1, 32", "shift amount out of range"},
		{"secure branch", "sbeq $t0, $t1, 0", "unknown mnemonic"},
		{"bad directive", ".frobnicate 1", "unknown directive"},
		{"bad space", ".data\n.space -1", "bad .space size"},
		{"empty word", ".data\n.word", ".word needs at least one value"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble(c.src)
			if err == nil {
				t.Fatalf("Assemble succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestLinesMapping(t *testing.T) {
	p := mustAssemble(t, "nop\n\nnop\nli $t0, 99999\n")
	if len(p.Lines) != len(p.Text) {
		t.Fatalf("lines %d != text %d", len(p.Lines), len(p.Text))
	}
	if p.Lines[0] != 1 || p.Lines[1] != 3 {
		t.Errorf("lines = %v", p.Lines[:2])
	}
	// li expansion shares one source line.
	for _, l := range p.Lines[2:] {
		if l != 4 {
			t.Errorf("li expansion line = %d, want 4", l)
		}
	}
}

func TestSymbolAt(t *testing.T) {
	p := mustAssemble(t, `
main:	nop
		nop
sub:	nop
	`)
	if n, ok := p.SymbolAt(p.Symbols["main"] + 4); !ok || n != "main" {
		t.Errorf("SymbolAt(main+4) = %q, %v", n, ok)
	}
	if n, ok := p.SymbolAt(p.Symbols["sub"]); !ok || n != "sub" {
		t.Errorf("SymbolAt(sub) = %q, %v", n, ok)
	}
}

func TestListingAndSortedSymbols(t *testing.T) {
	p := mustAssemble(t, `
main:	addu $t0, $t1, $t2
loop:	halt
	`)
	l := p.Listing()
	for _, want := range []string{"main:", "loop:", "addu $t0, $t1, $t2", "halt"} {
		if !strings.Contains(l, want) {
			t.Errorf("listing missing %q:\n%s", want, l)
		}
	}
	syms := p.SortedSymbols()
	if len(syms) != 2 || syms[0].Name != "main" || syms[1].Name != "loop" {
		t.Errorf("sorted symbols = %v", syms)
	}
}

func TestEncodableOutput(t *testing.T) {
	// Everything the assembler emits must be encodable.
	p := mustAssemble(t, `
		.data
v:		.word 7
		.text
main:	la   $gp, v
		lw   $t0, 0($gp)
		slw  $t1, 0($gp)
		sxor $t2, $t0, $t1
		ssw  $t2, 0($gp)
		li   $t3, 123456789
		blt  $t3, $t2, main
		jal  main
		jr   $ra
		halt
	`)
	for i, in := range p.Text {
		w, err := isa.Encode(in)
		if err != nil {
			t.Errorf("inst %d (%v): %v", i, in, err)
			continue
		}
		back, err := isa.Decode(w)
		if err != nil || back != in {
			t.Errorf("inst %d round trip: %v -> %v (%v)", i, in, back, err)
		}
	}
}

func TestInstAtAndBounds(t *testing.T) {
	p := mustAssemble(t, "main: nop\nhalt\n")
	if in, err := p.InstAt(p.TextBase); err != nil || !in.IsNop() {
		t.Errorf("InstAt(base) = %v, %v", in, err)
	}
	if _, err := p.InstAt(p.TextEnd()); err == nil {
		t.Error("InstAt(end) succeeded, want error")
	}
	if _, err := p.InstAt(p.TextBase + 2); err == nil {
		t.Error("InstAt(unaligned) succeeded, want error")
	}
}

func TestCustomBases(t *testing.T) {
	p, err := AssembleWith(".data\nv: .word 1\n.text\nmain: la $t0, v\nhalt\n",
		Options{TextBase: 0x1000, DataBase: 0x8000})
	if err != nil {
		t.Fatal(err)
	}
	if p.TextBase != 0x1000 || p.Symbols["main"] != 0x1000 {
		t.Errorf("text base/main = %#x/%#x", p.TextBase, p.Symbols["main"])
	}
	if p.Symbols["v"] != 0x8000 {
		t.Errorf("v = %#x, want 0x8000", p.Symbols["v"])
	}
	if _, err := AssembleWith("nop", Options{TextBase: 2, DataBase: 0x8000}); err == nil {
		t.Error("unaligned base accepted")
	}
}

// TestDisassembleReassembleProperty: every instruction the assembler can emit
// disassembles (via Inst.String) to text the assembler parses back to the
// identical instruction — branches and jumps excepted (their rendering uses
// resolved numeric targets, which reassemble relative to a different
// location).
func TestDisassembleReassembleProperty(t *testing.T) {
	p := mustAssemble(t, `
		.data
v:		.word 1, 2, 3
		.text
main:	la    $gp, v
		lw    $t0, 0($gp)
		slw   $t1, 4($gp)
		sxor  $t2, $t0, $t1
		saddu $t3, $t2, $t0
		ssll  $t4, $t3, 7
		ssw   $t4, 8($gp)
		sltiu $t5, $t4, 100
		nor   $t6, $t5, $zero
		srav  $t7, $t6, $t0
		mul   $s0, $t7, $t0
		lui   $s1, 5
		ori   $s1, $s1, 9
		andi  $s2, $s1, 255
		xori  $s3, $s2, 15
		subu  $s4, $s3, $s2
		halt
	`)
	for i, in := range p.Text {
		if in.Op.IsBranch() || in.Op.IsJump() {
			continue
		}
		text := in.String()
		p2, err := Assemble("main: " + text + "\nhalt\n")
		if err != nil {
			t.Errorf("inst %d: reassembling %q: %v", i, text, err)
			continue
		}
		if p2.Text[0] != in {
			t.Errorf("inst %d: %v -> %q -> %v", i, in, text, p2.Text[0])
		}
	}
}
