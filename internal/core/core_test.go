package core

import (
	"sync"
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/des"
	"desmask/internal/energy"
	"desmask/internal/trace"
)

const (
	key   = 0x133457799BBCDFF1
	key2  = 0x133457799BBCDFF1 ^ (1 << 62)
	plain = 0x0123456789ABCDEF
)

var (
	sysOnce sync.Once
	systems map[compiler.Policy]*System
)

func sys(t *testing.T, p compiler.Policy) *System {
	t.Helper()
	sysOnce.Do(func() {
		systems = map[compiler.Policy]*System{}
		for _, pol := range compiler.Policies() {
			s, err := NewSystem(pol)
			if err != nil {
				panic(err)
			}
			systems[pol] = s
		}
	})
	return systems[p]
}

func TestVerifyAgainstReference(t *testing.T) {
	for _, pol := range compiler.Policies() {
		if err := sys(t, pol).Verify(key, plain); err != nil {
			t.Errorf("%v: %v", pol, err)
		}
	}
}

func TestEncryptResult(t *testing.T) {
	s := sys(t, compiler.PolicyNone)
	res, err := s.Encrypt(key, plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cipher != des.Encrypt(key, plain) {
		t.Error("wrong ciphertext")
	}
	if res.TotalUJ() <= 0 || res.Stats.Cycles == 0 {
		t.Errorf("implausible result: %+v", res)
	}
}

func TestEncryptWithTrace(t *testing.T) {
	s := sys(t, compiler.PolicyNone)
	res, tr, err := s.EncryptWithTrace(key, plain)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(tr.Len()) != res.Stats.Cycles {
		t.Errorf("trace length %d != cycles %d", tr.Len(), res.Stats.Cycles)
	}
	if trace.TotalPJ(tr.Totals) <= 0 {
		t.Error("empty trace")
	}
}

func TestComparePolicies(t *testing.T) {
	rep, err := ComparePolicies(key, plain, []compiler.Policy{
		compiler.PolicyNone, compiler.PolicySelective,
		compiler.PolicyNaiveLoadStore, compiler.PolicyAllSecure,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	var prev float64
	for i, row := range rep.Rows {
		if i > 0 && row.TotalUJ <= prev {
			t.Errorf("%v (%.2f µJ) not above previous (%.2f µJ)", row.Policy, row.TotalUJ, prev)
		}
		prev = row.TotalUJ
	}
	// The paper's headline: selective avoids ~83% of the dual-rail
	// overhead. Accept the 70-90% band for shape.
	hs := rep.HeadlineSavings()
	if hs < 0.70 || hs > 0.90 {
		t.Errorf("headline savings = %.1f%%, want ~83%%", 100*hs)
	}
	// All-secure roughly doubles the original (paper: 83.5/46.4 = 1.80).
	noneRow, _ := rep.Row(compiler.PolicyNone)
	allRow, _ := rep.Row(compiler.PolicyAllSecure)
	ratio := allRow.TotalUJ / noneRow.TotalUJ
	if ratio < 1.6 || ratio > 2.1 {
		t.Errorf("all-secure/none = %.2f, want ~1.8", ratio)
	}
	if _, ok := rep.Row(compiler.PolicySeedsOnly); ok {
		t.Error("Row returned a policy that was not compared")
	}
}

func TestDifferentialMaskedFlat(t *testing.T) {
	s := sys(t, compiler.PolicySelective)
	// Window: everything before the output permutation.
	_, tr, err := s.EncryptWithTrace(key, plain)
	if err != nil {
		t.Fatal(err)
	}
	entry, err := s.Machine().EntryPC("output_permutation")
	if err != nil {
		t.Fatal(err)
	}
	end := tr.Len()
	for i, pc := range tr.PCs {
		if pc == entry {
			end = i
			break
		}
	}
	w := trace.Window{Start: 0, End: end}
	_, sum, err := s.DifferentialTrace(key, plain, key2, plain, &w)
	if err != nil {
		t.Fatal(err)
	}
	if !sum.Flat {
		t.Errorf("masked differential not flat: %+v", sum.Stats)
	}
}

func TestDifferentialUnmaskedNotFlat(t *testing.T) {
	s := sys(t, compiler.PolicyNone)
	_, sum, err := s.DifferentialTrace(key, plain, key2, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flat {
		t.Error("unmasked differential is flat; key leak expected")
	}
	if sum.Stats.MaxAbs < 1 {
		t.Errorf("unmasked differential suspiciously small: %+v", sum.Stats)
	}
}

func TestAblationConfig(t *testing.T) {
	cfg := energy.DefaultConfig()
	cfg.DualRailPrecharge = false
	s, err := NewSystemWithConfig(compiler.PolicySelective, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(key, plain); err != nil {
		t.Fatal(err)
	}
	// Without precharge the masked differential must NOT be flat.
	_, sum, err := s.DifferentialTrace(key, plain, key2, plain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Flat {
		t.Error("no-precharge ablation should leak")
	}
}

func TestReportAndPolicyAccessors(t *testing.T) {
	s := sys(t, compiler.PolicySelective)
	if s.Policy() != compiler.PolicySelective {
		t.Error("wrong policy")
	}
	rep := s.Report()
	if rep.SecuredOps == 0 || rep.SecuredOps >= rep.TotalOps {
		t.Errorf("selective report implausible: %+v", rep)
	}
	if len(rep.Seeds) != 1 || rep.Seeds[0] != "key" {
		t.Errorf("seeds = %v", rep.Seeds)
	}
}
