package core_test

import (
	"fmt"

	"desmask/internal/compiler"
	"desmask/internal/core"
)

// ExampleSystem demonstrates the end-to-end flow: build the selectively
// masked DES system, encrypt one block on the simulated smart card, and
// verify against the reference implementation.
func ExampleSystem() {
	sys, err := core.NewSystem(compiler.PolicySelective)
	if err != nil {
		panic(err)
	}
	res, err := sys.Encrypt(0x133457799BBCDFF1, 0x0123456789ABCDEF)
	if err != nil {
		panic(err)
	}
	fmt.Printf("cipher %016X\n", res.Cipher)
	fmt.Println("verified:", sys.Verify(0x133457799BBCDFF1, 0x0123456789ABCDEF) == nil)
	// Output:
	// cipher 85E813540F0AB405
	// verified: true
}

// ExampleComparePolicies reproduces the paper's §4.3 energy ordering.
func ExampleComparePolicies() {
	rep, err := core.ComparePolicies(0x133457799BBCDFF1, 0x0123456789ABCDEF,
		[]compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure})
	if err != nil {
		panic(err)
	}
	none, _ := rep.Row(compiler.PolicyNone)
	sel, _ := rep.Row(compiler.PolicySelective)
	all, _ := rep.Row(compiler.PolicyAllSecure)
	fmt.Println("ordering holds:", none.TotalUJ < sel.TotalUJ && sel.TotalUJ < all.TotalUJ)
	fmt.Printf("full dual-rail costs %.1fx the original\n", all.TotalUJ/none.TotalUJ)
	// Output:
	// ordering holds: true
	// full dual-rail costs 1.8x the original
}
