// Package core is the top-level API of the desmask library: it ties together
// the masking compiler (package compiler), the secure-instruction processor
// simulator (packages isa/asm/cpu/energy/mem), the DES workload (package
// desprog) and the analysis tooling (packages trace/dpa) behind a small
// surface that mirrors how the paper uses its system — pick a protection
// policy, encrypt on the simulated smart card, and inspect energy behaviour.
package core

import (
	"fmt"

	"desmask/internal/compiler"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/energy"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

// System is a compiled DES smart-card system at one protection policy.
type System struct {
	policy  compiler.Policy
	cfg     energy.Config
	machine *desprog.Machine
}

// NewSystem compiles the DES program under the given policy with the
// default (paper) energy configuration.
func NewSystem(policy compiler.Policy) (*System, error) {
	return NewSystemWithConfig(policy, energy.DefaultConfig())
}

// NewSystemWithConfig uses an explicit energy-model configuration, enabling
// the architectural ablations (no precharge, no clock gating, inter-wire
// coupling).
func NewSystemWithConfig(policy compiler.Policy, cfg energy.Config) (*System, error) {
	m, err := desprog.NewWithConfig(policy, cfg)
	if err != nil {
		return nil, err
	}
	return &System{policy: policy, cfg: cfg, machine: m}, nil
}

// Policy returns the system's protection policy.
func (s *System) Policy() compiler.Policy { return s.policy }

// Machine exposes the underlying compiled machine for window lookups and
// attack-trace collection.
func (s *System) Machine() *desprog.Machine { return s.machine }

// Report returns the compiler's protection report (seeds, forward slice,
// secured-operation counts).
func (s *System) Report() compiler.Report { return s.machine.Res.Report }

// EncryptResult is the outcome of one simulated encryption.
type EncryptResult struct {
	Cipher uint64
	Stats  sim.Stats
}

// TotalUJ returns the run's total energy in microjoules.
func (r EncryptResult) TotalUJ() float64 { return r.Stats.Energy.Total / 1e6 }

// Encrypt runs one block encryption on the simulator.
func (s *System) Encrypt(key, plaintext uint64) (EncryptResult, error) {
	cipher, stats, done, err := s.machine.Encrypt(key, plaintext, 0)
	if err != nil {
		return EncryptResult{}, err
	}
	if !done {
		return EncryptResult{}, fmt.Errorf("core: encryption did not complete")
	}
	return EncryptResult{Cipher: cipher, Stats: stats}, nil
}

// EncryptWithTrace runs one encryption capturing the full per-cycle energy
// trace.
func (s *System) EncryptWithTrace(key, plaintext uint64) (EncryptResult, *trace.Trace, error) {
	tr, cipher, stats, err := s.machine.TraceRun(key, plaintext)
	if err != nil {
		return EncryptResult{}, nil, err
	}
	return EncryptResult{Cipher: cipher, Stats: stats}, tr, nil
}

// Runner exposes the system's simulation session, the entry point for batch
// execution (sim.RunBatch) against this compiled system.
func (s *System) Runner() *sim.Runner { return s.machine.Runner() }

// Verify encrypts on the simulator and checks the result against the
// reference DES implementation.
func (s *System) Verify(key, plaintext uint64) error {
	res, err := s.Encrypt(key, plaintext)
	if err != nil {
		return err
	}
	if want := des.Encrypt(key, plaintext); res.Cipher != want {
		return fmt.Errorf("core: simulated cipher %#016x != reference %#016x", res.Cipher, want)
	}
	return nil
}

// PolicyEnergy is one row of the policy comparison (the paper's §4.3
// totals: 46.4 / 52.6 / 63.6 / 83.5 µJ).
type PolicyEnergy struct {
	Policy     compiler.Policy
	TotalUJ    float64
	AvgPJCycle float64
	Cycles     uint64
	SecureInst uint64
	Insts      uint64
}

// EnergyReport compares the protection policies on one workload.
type EnergyReport struct {
	Rows []PolicyEnergy
}

// Row returns the row for a policy.
func (r *EnergyReport) Row(p compiler.Policy) (PolicyEnergy, bool) {
	for _, row := range r.Rows {
		if row.Policy == p {
			return row, true
		}
	}
	return PolicyEnergy{}, false
}

// Overhead returns a policy's additional energy over the unprotected run,
// in µJ.
func (r *EnergyReport) Overhead(p compiler.Policy) float64 {
	base, ok1 := r.Row(compiler.PolicyNone)
	row, ok2 := r.Row(p)
	if !ok1 || !ok2 {
		return 0
	}
	return row.TotalUJ - base.TotalUJ
}

// HeadlineSavings returns the paper's abstract claim: the fraction of the
// full-dual-rail additional energy that selective masking avoids
// (1 − overhead(selective)/overhead(all-secure) ≈ 0.83).
func (r *EnergyReport) HeadlineSavings() float64 {
	all := r.Overhead(compiler.PolicyAllSecure)
	if all == 0 {
		return 0
	}
	return 1 - r.Overhead(compiler.PolicySelective)/all
}

// ComparePolicies encrypts the same block under each policy and tabulates
// energy. Policies compile and run in parallel; rows come back in policy
// order.
func ComparePolicies(key, plaintext uint64, policies []compiler.Policy) (*EnergyReport, error) {
	rows := make([]PolicyEnergy, len(policies))
	err := sim.ForEach(len(policies), 0, func(i int) error {
		s, err := NewSystem(policies[i])
		if err != nil {
			return err
		}
		res, err := s.Encrypt(key, plaintext)
		if err != nil {
			return err
		}
		rows[i] = PolicyEnergy{
			Policy:     policies[i],
			TotalUJ:    res.TotalUJ(),
			AvgPJCycle: res.Stats.AvgPJPerCycle(),
			Cycles:     res.Stats.Cycles,
			SecureInst: res.Stats.SecureInst,
			Insts:      res.Stats.Insts,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &EnergyReport{Rows: rows}, nil
}

// DifferentialSummary quantifies how much two runs' energy profiles differ
// inside a window — the flatness criterion of Figures 8-11.
type DifferentialSummary struct {
	Window trace.Window
	Stats  trace.Stats
	// Flat is true when no cycle in the window differs beyond numerical
	// noise: the masked condition.
	Flat bool
}

// DifferentialTrace runs the system twice (two keys or two plaintexts) —
// both runs in parallel through the session — and summarises the
// differential profile over the given window. A nil window means the whole
// run.
func (s *System) DifferentialTrace(k1, p1, k2, p2 uint64, w *trace.Window) ([]float64, DifferentialSummary, error) {
	traces, _, err := s.machine.TraceBatch([]desprog.Input{{Key: k1, Plaintext: p1}, {Key: k2, Plaintext: p2}}, sim.Options{})
	if err != nil {
		return nil, DifferentialSummary{}, err
	}
	t1, t2 := traces[0], traces[1]
	d, err := trace.Diff(t1.Totals, t2.Totals)
	if err != nil {
		return nil, DifferentialSummary{}, err
	}
	win := trace.Window{Start: 0, End: len(d)}
	if w != nil {
		win = *w
	}
	seg := d[win.Start:win.End]
	st := trace.Summarize(seg)
	return d, DifferentialSummary{Window: win, Stats: st, Flat: st.MaxAbs < 1e-9}, nil
}
