// custom-program shows the masking compiler on a user kernel that is not
// DES: a toy MAC that mixes a secret key into a message. Annotating the key
// `secure` is all the programmer does; forward slicing finds the derived
// values, the emitted assembly secures exactly the key-dependent
// operations, and two runs with different secrets produce cycle-identical
// energy traces.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/mem"
)

const src = `
// A toy keyed checksum: secret key, public message, public-by-design tag.
secure int key[4];
int msg[16];
int tag;

int mix(int acc, secure int k, int m) {
	int t;
	t = (acc ^ k) + m;
	t = (t << 3) | ((t >> 29) & 7);
	return t;
}

void main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 16; i = i + 1) {
		acc = mix(acc, key[i & 3], msg[i]);
	}
	// The tag is emitted to the outside world anyway.
	tag = public(acc);
}
`

func run(res *compiler.Result, keyVals [4]uint32) ([]float64, []uint32, uint32, error) {
	c, err := cpu.New(res.Program, mem.New(), energy.NewModel(energy.DefaultConfig()))
	if err != nil {
		return nil, nil, 0, err
	}
	keyAddr := res.Program.Symbols[compiler.GlobalLabel("key")]
	msgAddr := res.Program.Symbols[compiler.GlobalLabel("msg")]
	for i, v := range keyVals {
		if err := c.Mem().StoreWord(keyAddr+uint32(4*i), v); err != nil {
			return nil, nil, 0, err
		}
	}
	for i := 0; i < 16; i++ {
		if err := c.Mem().StoreWord(msgAddr+uint32(4*i), uint32(0x1000+i)); err != nil {
			return nil, nil, 0, err
		}
	}
	var totals []float64
	var pcs []uint32
	c.SetSink(cpu.SinkFunc(func(ci cpu.CycleInfo) {
		totals = append(totals, ci.Energy.Total)
		pc := uint32(0xffffffff)
		if ci.ExecValid {
			pc = ci.ExecPC
		}
		pcs = append(pcs, pc)
	}))
	if err := c.Run(1_000_000); err != nil {
		return nil, nil, 0, err
	}
	tag, err := c.Mem().LoadWord(res.Program.Symbols[compiler.GlobalLabel("tag")])
	return totals, pcs, tag, err
}

func main() {
	res, err := compiler.Compile(src, compiler.PolicySelective)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== forward slice ===")
	fmt.Print(res.Report.String())

	// Show a few of the secured instructions the compiler emitted.
	fmt.Println("\n=== secured instructions (excerpt) ===")
	shown := 0
	for _, line := range strings.Split(res.Asm, "\n") {
		if strings.Contains(line, ".s ") && shown < 8 {
			fmt.Println(line)
			shown++
		}
	}

	// Two different secrets: every cycle until the tag is declassified and
	// emitted must be energy-identical. The tag-emission tail legitimately
	// differs — the tag is public output, exactly like the paper's output
	// inverse permutation.
	t1, pcs, tag1, err := run(res, [4]uint32{0x00000000, 0x11111111, 0x22222222, 0x33333333})
	if err != nil {
		log.Fatal(err)
	}
	t2, _, tag2, err := run(res, [4]uint32{0xdeadbeef, 0xcafef00d, 0x8badf00d, 0xfeedface})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntags: %08x vs %08x (different, as they should be)\n", tag1, tag2)

	// The masked region ends when the last mix() call returns; everything
	// after that is the public-output emission.
	mixStart := res.Program.Symbols["f_mix"]
	mixEnd := res.Program.Symbols["f_mix_ret"] + 12 // through the jr
	lastMix := 0
	for i, pc := range pcs {
		if pc >= mixStart && pc < mixEnd {
			lastMix = i
		}
	}
	var maskedDiff, tailDiff float64
	for i := range t1 {
		d := math.Abs(t1[i] - t2[i])
		if i <= lastMix {
			if d > maskedDiff {
				maskedDiff = d
			}
		} else if d > tailDiff {
			tailDiff = d
		}
	}
	fmt.Printf("cycles: %d (masked region: 0..%d)\n", len(t1), lastMix)
	fmt.Printf("max energy difference, secret-processing region: %.6f pJ\n", maskedDiff)
	fmt.Printf("max energy difference, public-tag emission:      %.2f pJ (reveals only the tag)\n", tailDiff)
	if maskedDiff < 1e-9 {
		fmt.Println("energy behaviour of the secret is fully masked")
	} else {
		fmt.Println("WARNING: the secret leaks!")
	}
}
