// custom-program shows the masking compiler on a user kernel that is not
// DES: a toy MAC that mixes a secret key into a message. Annotating the key
// `secure` is all the programmer does; forward slicing finds the derived
// values, the emitted assembly secures exactly the key-dependent
// operations, and two runs with different secrets produce cycle-identical
// energy traces.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	"desmask/internal/compiler"
	"desmask/internal/energy"
	"desmask/internal/sim"
)

const src = `
// A toy keyed checksum: secret key, public message, public-by-design tag.
secure int key[4];
int msg[16];
int tag;

int mix(int acc, secure int k, int m) {
	int t;
	t = (acc ^ k) + m;
	t = (t << 3) | ((t >> 29) & 7);
	return t;
}

void main() {
	int i;
	int acc;
	acc = 0;
	for (i = 0; i < 16; i = i + 1) {
		acc = mix(acc, key[i & 3], msg[i]);
	}
	// The tag is emitted to the outside world anyway.
	tag = public(acc);
}
`

// job assembles one run of the MAC kernel as a batch job: key and message
// poked in fixed order, the tag read back, the full trace captured.
func job(res *compiler.Result, keyVals [4]uint32) sim.Job {
	j := sim.Job{MaxCycles: 1_000_000, Trace: true}
	keyAddr := res.Program.Symbols[compiler.GlobalLabel("key")]
	msgAddr := res.Program.Symbols[compiler.GlobalLabel("msg")]
	for i, v := range keyVals {
		j.Writes = append(j.Writes, sim.Write{Addr: keyAddr + uint32(4*i), Val: v})
	}
	for i := 0; i < 16; i++ {
		j.Writes = append(j.Writes, sim.Write{Addr: msgAddr + uint32(4*i), Val: uint32(0x1000 + i)})
	}
	j.Reads = []sim.Read{{Addr: res.Program.Symbols[compiler.GlobalLabel("tag")], Words: 1}}
	return j
}

func main() {
	res, err := compiler.Compile(src, compiler.PolicySelective)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== forward slice ===")
	fmt.Print(res.Report.String())

	// Show a few of the secured instructions the compiler emitted.
	fmt.Println("\n=== secured instructions (excerpt) ===")
	shown := 0
	for _, line := range strings.Split(res.Asm, "\n") {
		if strings.Contains(line, ".s ") && shown < 8 {
			fmt.Println(line)
			shown++
		}
	}

	// Two different secrets: every cycle until the tag is declassified and
	// emitted must be energy-identical. The tag-emission tail legitimately
	// differs — the tag is public output, exactly like the paper's output
	// inverse permutation. The two runs go through one simulation session as
	// a parallel batch.
	runner := sim.NewRunner(res.Program, energy.DefaultConfig())
	results, err := runner.RunBatch([]sim.Job{
		job(res, [4]uint32{0x00000000, 0x11111111, 0x22222222, 0x33333333}),
		job(res, [4]uint32{0xdeadbeef, 0xcafef00d, 0x8badf00d, 0xfeedface}),
	}, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	t1, t2 := results[0].Trace.Totals, results[1].Trace.Totals
	pcs := results[0].Trace.PCs
	tag1, tag2 := results[0].Mem[0][0], results[1].Mem[0][0]
	fmt.Printf("\ntags: %08x vs %08x (different, as they should be)\n", tag1, tag2)

	// The masked region ends when the last mix() call returns; everything
	// after that is the public-output emission.
	mixStart := res.Program.Symbols["f_mix"]
	mixEnd := res.Program.Symbols["f_mix_ret"] + 12 // through the jr
	lastMix := 0
	for i, pc := range pcs {
		if pc >= mixStart && pc < mixEnd {
			lastMix = i
		}
	}
	var maskedDiff, tailDiff float64
	for i := range t1 {
		d := math.Abs(t1[i] - t2[i])
		if i <= lastMix {
			if d > maskedDiff {
				maskedDiff = d
			}
		} else if d > tailDiff {
			tailDiff = d
		}
	}
	fmt.Printf("cycles: %d (masked region: 0..%d)\n", len(t1), lastMix)
	fmt.Printf("max energy difference, secret-processing region: %.6f pJ\n", maskedDiff)
	fmt.Printf("max energy difference, public-tag emission:      %.2f pJ (reveals only the tag)\n", tailDiff)
	if maskedDiff < 1e-9 {
		fmt.Println("energy behaviour of the secret is fully masked")
	} else {
		fmt.Println("WARNING: the secret leaks!")
	}
}
