// Quickstart: encrypt one DES block on the simulated smart-card processor
// with the paper's selective energy masking, verify it against the
// reference implementation, and compare the energy bill with the
// unprotected baseline.
package main

import (
	"fmt"
	"log"

	"desmask/internal/compiler"
	"desmask/internal/core"
)

func main() {
	const (
		key       = 0x133457799BBCDFF1
		plaintext = 0x0123456789ABCDEF
	)

	// Build the masked system: the compiler forward-slices from the
	// `secure`-annotated key and emits dual-rail secure instructions only
	// where key-derived data flows.
	masked, err := core.NewSystem(compiler.PolicySelective)
	if err != nil {
		log.Fatal(err)
	}
	res, err := masked.Encrypt(key, plaintext)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plaintext  %016X\n", uint64(plaintext))
	fmt.Printf("ciphertext %016X\n", res.Cipher)

	// The simulated, compiler-masked implementation must agree with the
	// reference oracle.
	if err := masked.Verify(key, plaintext); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified against reference DES: OK")

	// Compare with the unprotected baseline.
	baseline, err := core.NewSystem(compiler.PolicyNone)
	if err != nil {
		log.Fatal(err)
	}
	base, err := baseline.Encrypt(key, plaintext)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %10s %12s %14s\n", "system", "energy", "pJ/cycle", "secure insts")
	fmt.Printf("%-22s %8.2f uJ %12.1f %8d/%d\n", "unprotected", base.TotalUJ(),
		base.Stats.AvgPJPerCycle(), base.Stats.SecureInst, base.Stats.Insts)
	fmt.Printf("%-22s %8.2f uJ %12.1f %8d/%d\n", "selectively masked", res.TotalUJ(),
		res.Stats.AvgPJPerCycle(), res.Stats.SecureInst, res.Stats.Insts)
	fmt.Printf("\nmasking cost: +%.1f%% energy for key-trace-flat execution\n",
		100*(res.TotalUJ()/base.TotalUJ()-1))

	rep := masked.Report()
	fmt.Printf("compiler secured %d of %d securable instructions (seeds: %v)\n",
		rep.SecuredOps, rep.TotalOps, rep.Seeds)
}
