// dpa-attack mounts the differential power analysis of Kocher et al. [7]
// (as described by Goubin-Patarin [5]) against the simulated smart card:
// collect first-round energy traces for random known plaintexts, guess the
// 6 sub-key bits feeding each S-box, and split traces by a predicted S-box
// output bit. On the unprotected system the correct guess produces a
// differential spike and the first-round sub-key falls out; on the
// selectively masked system every guess is exactly flat.
package main

import (
	"flag"
	"fmt"
	"log"

	"desmask/internal/compiler"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
	"desmask/internal/trace"
)

func main() {
	numTraces := flag.Int("traces", 256, "energy traces to collect per system")
	key := flag.Uint64("key", 0x133457799BBCDFF1, "the secret key under attack")
	workers := flag.Int("workers", 0, "trace-acquisition worker pool size; <= 0 uses GOMAXPROCS")
	flag.Parse()

	// Acquisition fans out across the simulation session; the collected
	// trace set is bit-identical for every worker count.
	cfg := dpa.Config{NumTraces: *numTraces, Seed: 42, MaxCycles: 25_000, Workers: *workers}
	window := trace.Window{Start: 7_000, End: 25_000} // skip the plaintext-dependent IP

	for _, pol := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective} {
		m, err := desprog.New(pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== attacking %s system (%d traces) ===\n", pol, *numTraces)
		ts, err := dpa.Collect(m, *key, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ts.Window = window

		results := dpa.AttackAll(ts, 0)
		recovered, detail := dpa.Verify(results, *key)
		for box, r := range results {
			status := "WRONG"
			if detail[box] {
				status = "RECOVERED"
			}
			fmt.Printf("  S-box %d: guess %2d (truth %2d)  peak %6.2f pJ  margin %.2f  %s\n",
				box+1, r.Best.Guess, des.SubkeySixBits(*key, box), r.Best.Peak, r.Margin(), status)
		}
		fmt.Printf("  -> %d/8 six-bit sub-key chunks recovered\n", recovered)

		// Complete the break: 48 K1 bits + one known pt/ct pair pin down
		// the remaining 8 effective key bits by trial encryption.
		pt := ts.Plaintexts[0]
		ct := des.Encrypt(*key, pt)
		var chunks [8]uint32
		for box, r := range results {
			chunks[box] = r.Best.Guess
		}
		if full, ok := des.RecoverKey(chunks, pt, ct); ok {
			fmt.Printf("  -> FULL 56-bit KEY RECOVERED: %016X (true key mod parity: %016X)\n\n",
				full, des.StripParity(*key))
		} else {
			fmt.Printf("  -> full key recovery failed (some chunk was wrong)\n\n")
		}
	}

	fmt.Println("The masked system's round region is energy-identical for every")
	fmt.Println("plaintext, so the difference of means is exactly zero for all 64")
	fmt.Println("guesses: DPA has nothing to work with.")
}
