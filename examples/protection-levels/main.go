// protection-levels sweeps every protection policy and architectural
// ablation over one DES encryption, reporting total energy and whether the
// secret key still leaks into the differential energy profile — the paper's
// §4.3 comparison extended with the DESIGN.md §6 ablations.
package main

import (
	"fmt"
	"log"

	"desmask/internal/compiler"
	"desmask/internal/core"
	"desmask/internal/experiments"
	"desmask/internal/trace"
)

func main() {
	const (
		key   = experiments.DefaultKey
		key2  = experiments.DefaultKeyBit1
		plain = experiments.DefaultPlain
	)

	fmt.Println("=== protection policies (paper §4.3) ===")
	fmt.Printf("%-18s %10s %12s %10s %8s\n", "policy", "total uJ", "pJ/cycle", "overhead", "leaks")
	var baseUJ float64
	for _, pol := range compiler.Policies() {
		s, err := core.NewSystem(pol)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.Encrypt(key, plain)
		if err != nil {
			log.Fatal(err)
		}
		if pol == compiler.PolicyNone {
			baseUJ = res.TotalUJ()
		}
		// Leak check: differential of two keys over the whole pre-output
		// region.
		_, tr, err := s.EncryptWithTrace(key, plain)
		if err != nil {
			log.Fatal(err)
		}
		entry, err := s.Machine().EntryPC("output_permutation")
		if err != nil {
			log.Fatal(err)
		}
		end := tr.Len()
		for i, pc := range tr.PCs {
			if pc == entry {
				end = i
				break
			}
		}
		w := trace.Window{Start: 0, End: end}
		_, sum, err := s.DifferentialTrace(key, plain, key2, plain, &w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10.2f %12.1f %+9.1f%% %8v\n",
			pol, res.TotalUJ(), res.Stats.AvgPJPerCycle(),
			100*(res.TotalUJ()/baseUJ-1), !sum.Flat)
	}

	fmt.Println("\n=== architectural ablations (DESIGN.md §6) ===")
	rows, err := experiments.Ablations()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %10s %8s %14s\n", "variant", "total uJ", "leaks", "max|diff| pJ")
	for _, a := range rows {
		fmt.Printf("%-34s %10.2f %8v %14.3f\n", a.Name, a.TotalUJ, a.Leaks, a.MaxAbs)
	}

	fmt.Println("\n=== generality: other ciphers under the same compiler ===")
	wl, err := experiments.Workloads()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %10s %10s %14s %14s %12s\n", "workload", "cycles", "none uJ", "selective uJ", "all-secure uJ", "masked flat")
	for _, row := range wl {
		fmt.Printf("%-8s %10d %10.2f %14.2f %14.2f %12v\n", row.Name, row.Cycles,
			row.UJ[compiler.PolicyNone], row.UJ[compiler.PolicySelective],
			row.UJ[compiler.PolicyAllSecure], row.MaskedFlat)
	}

	fmt.Println("\nReading the tables: only configurations with leaks=false defeat DPA;")
	fmt.Println("among those, the paper's selective masking is by far the cheapest.")
}
