// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§4.3). Each BenchmarkFigure*/BenchmarkTable* target runs the
// corresponding experiment end to end and reports the headline quantity as
// a custom metric, so `go test -bench=.` doubles as the reproduction
// harness. Supporting micro-benchmarks (simulator throughput, compiler,
// reference DES) characterise the substrates.
package desmask

import (
	"testing"

	"desmask/internal/compiler"
	"desmask/internal/core"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
	"desmask/internal/energy"
	"desmask/internal/experiments"
	"desmask/internal/kernels"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

const (
	benchKey   = experiments.DefaultKey
	benchKey2  = experiments.DefaultKeyBit1
	benchPlain = experiments.DefaultPlain
)

// BenchmarkFigure6_EncryptionTrace regenerates Figure 6: the bucketed energy
// profile revealing the 16 rounds. Reports the SPA round estimate.
func BenchmarkFigure6_EncryptionTrace(b *testing.B) {
	var rounds float64
	for i := 0; i < b.N; i++ {
		// Bucket width 100 for the SPA analysis (the paper's width-10
		// bucketing is for plotting; at width 10 the slight round-length
		// variation from the shift schedule blurs the autocorrelation).
		f6, err := experiments.Figure6(benchKey, benchPlain, 100)
		if err != nil {
			b.Fatal(err)
		}
		rounds = float64(f6.SPA.Rounds)
	}
	b.ReportMetric(rounds, "spa-rounds")
}

// BenchmarkFigure7_KeyDiffFirstRound regenerates Figure 7 (single key bit
// flipped, round 1, original). Reports the peak differential in pJ.
func BenchmarkFigure7_KeyDiffFirstRound(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		peak = r.Stats.MaxAbs
	}
	b.ReportMetric(peak, "peak-pJ")
}

// BenchmarkFigure8_KeyDiffUnmasked regenerates Figure 8.
func BenchmarkFigure8_KeyDiffUnmasked(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure8(benchKey, benchKey2, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
		peak = r.Stats.MaxAbs
	}
	b.ReportMetric(peak, "peak-pJ")
}

// BenchmarkFigure9_KeyDiffMasked regenerates Figure 9; the reported peak
// must be zero (fully masked).
func BenchmarkFigure9_KeyDiffMasked(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure9(benchKey, benchKey2, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Flat {
			b.Fatalf("masked differential not flat: %+v", r.Stats)
		}
		peak = r.Stats.MaxAbs
	}
	b.ReportMetric(peak, "peak-pJ")
}

// BenchmarkFigure10_PlaintextDiffUnmasked regenerates Figure 10.
func BenchmarkFigure10_PlaintextDiffUnmasked(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure10(benchKey, benchPlain, experiments.DefaultPlain2)
		if err != nil {
			b.Fatal(err)
		}
		peak = r.Stats.MaxAbs
	}
	b.ReportMetric(peak, "peak-pJ")
}

// BenchmarkFigure11_PlaintextDiffMasked regenerates Figure 11; differences
// must survive in the insecure initial permutation and vanish in round 1.
func BenchmarkFigure11_PlaintextDiffMasked(b *testing.B) {
	var ipPeak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure11(benchKey, benchPlain, experiments.DefaultPlain2)
		if err != nil {
			b.Fatal(err)
		}
		if !r.Round1.Flat {
			b.Fatal("masked round 1 not flat")
		}
		ipPeak = r.IP.Stats.MaxAbs
	}
	b.ReportMetric(ipPeak, "ip-peak-pJ")
}

// BenchmarkFigure12_MaskingOverhead regenerates Figure 12 and reports the
// mean masking overhead in pJ/cycle during the first key permutation
// (paper: ~45).
func BenchmarkFigure12_MaskingOverhead(b *testing.B) {
	var over float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure12(benchKey, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
		over = r.MeanOverheadPJ
	}
	b.ReportMetric(over, "overhead-pJ/cycle")
}

// BenchmarkTable_TotalEnergy regenerates the §4.3 totals (paper: 46.4 /
// 52.6 / 63.6 / 83.5 µJ) and reports the headline savings percentage
// (paper: 83%).
func BenchmarkTable_TotalEnergy(b *testing.B) {
	var headline float64
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.TableTotals(benchKey, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
		headline = 100 * tbl.HeadlineSavings()
	}
	b.ReportMetric(headline, "headline-%")
}

// BenchmarkDPA_Unmasked runs the first-round DPA attack against the
// unprotected system (64 traces for benchmark turnaround; the experiments
// binary demonstrates full 8/8 recovery at 256) and reports recovered
// sub-key chunks.
func BenchmarkDPA_Unmasked(b *testing.B) {
	var recovered float64
	for i := 0; i < b.N; i++ {
		att, err := experiments.DPAAttack(benchKey, 64)
		if err != nil {
			b.Fatal(err)
		}
		recovered = float64(att.RecoveredUnmasked)
	}
	b.ReportMetric(recovered, "chunks/8")
}

// BenchmarkDPA_MaskedFails verifies the attack collapses on the masked
// system (reported metric is the residual differential peak: zero).
func BenchmarkDPA_MaskedFails(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		att, err := experiments.DPAAttack(benchKey, 64)
		if err != nil {
			b.Fatal(err)
		}
		peak = att.MaskedPeak
	}
	b.ReportMetric(peak, "masked-peak-pJ")
}

// benchEncrypt measures one full simulated encryption at a policy,
// reporting µJ and simulated cycles.
func benchEncrypt(b *testing.B, policy compiler.Policy) {
	b.Helper()
	s, err := core.NewSystem(policy)
	if err != nil {
		b.Fatal(err)
	}
	var res core.EncryptResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = s.Encrypt(benchKey, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalUJ(), "uJ")
	b.ReportMetric(float64(res.Stats.Cycles), "sim-cycles")
}

// BenchmarkEncrypt_PolicyNone is the paper's unprotected baseline (46.4 µJ).
func BenchmarkEncrypt_PolicyNone(b *testing.B) { benchEncrypt(b, compiler.PolicyNone) }

// BenchmarkEncrypt_PolicySelective is the paper's scheme (52.6 µJ).
func BenchmarkEncrypt_PolicySelective(b *testing.B) { benchEncrypt(b, compiler.PolicySelective) }

// BenchmarkEncrypt_PolicyNaiveLoadStore is the naive all-loads/stores point
// (63.6 µJ).
func BenchmarkEncrypt_PolicyNaiveLoadStore(b *testing.B) {
	benchEncrypt(b, compiler.PolicyNaiveLoadStore)
}

// BenchmarkEncrypt_PolicyAllSecure is the full dual-rail point (83.5 µJ).
func BenchmarkEncrypt_PolicyAllSecure(b *testing.B) { benchEncrypt(b, compiler.PolicyAllSecure) }

// BenchmarkAblation_NoClockGating measures the cost of leaving the
// complementary datapath ungated (DESIGN.md §6.5).
func BenchmarkAblation_NoClockGating(b *testing.B) {
	cfg := energy.DefaultConfig()
	cfg.ClockGating = false
	s, err := core.NewSystemWithConfig(compiler.PolicySelective, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var res core.EncryptResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = s.Encrypt(benchKey, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalUJ(), "uJ")
}

// BenchmarkAblation_NoPrecharge measures the (leaky) dual-rail-without-
// precharge variant (DESIGN.md §6.3).
func BenchmarkAblation_NoPrecharge(b *testing.B) {
	cfg := energy.DefaultConfig()
	cfg.DualRailPrecharge = false
	s, err := core.NewSystemWithConfig(compiler.PolicySelective, cfg)
	if err != nil {
		b.Fatal(err)
	}
	var res core.EncryptResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = s.Encrypt(benchKey, benchPlain)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.TotalUJ(), "uJ")
}

// BenchmarkSimulator measures raw pipeline throughput in simulated cycles
// per second.
func BenchmarkSimulator(b *testing.B) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, _, err := m.Encrypt(benchKey, benchPlain, 0)
		if err != nil {
			b.Fatal(err)
		}
		cycles += stats.Cycles
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "sim-cycles/s")
}

// BenchmarkCompiler measures compiling the full DES program.
func BenchmarkCompiler(b *testing.B) {
	src := desprog.Source()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile(src, compiler.PolicySelective); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReferenceDES measures the oracle implementation.
func BenchmarkReferenceDES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		des.Encrypt(benchKey, benchPlain)
	}
}

// BenchmarkTraceCollection measures attacker-side trace acquisition (one
// first-round trace per iteration).
func BenchmarkTraceCollection(b *testing.B) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := m.EncryptJob(benchKey, uint64(i)*0x9e3779b97f4a7c15, 25_000, true)
		if err != nil {
			b.Fatal(err)
		}
		if res := m.Runner().Run(job); res.Err != nil {
			b.Fatal(res.Err)
		}
	}
}

// benchCollectWorkers measures batch trace acquisition (the dpa.Collect
// replacement built on sim.RunBatch) at a fixed worker count, reporting
// traces per second. Sequential (1) vs parallel (GOMAXPROCS) quantifies the
// session layer's speedup; both produce bit-identical trace sets.
func benchCollectWorkers(b *testing.B, workers int) {
	b.Helper()
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dpa.Config{NumTraces: 32, Seed: 42, MaxCycles: 25_000, Workers: workers}
	// Warm the session's worker pool and trace-size hint.
	if _, err := dpa.Collect(m, benchKey, cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dpa.Collect(m, benchKey, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cfg.NumTraces*b.N)/b.Elapsed().Seconds(), "traces/s")
}

// BenchmarkCollectTraces_Sequential acquires the DPA trace batch on one
// worker — the pre-session baseline.
func BenchmarkCollectTraces_Sequential(b *testing.B) { benchCollectWorkers(b, 1) }

// BenchmarkCollectTraces_Parallel acquires the same batch across GOMAXPROCS
// workers; on a 4+-core machine this shows the >=3x batch speedup.
func BenchmarkCollectTraces_Parallel(b *testing.B) { benchCollectWorkers(b, 0) }

// BenchmarkDifferenceOfMeans measures one DPA guess evaluation.
func BenchmarkDifferenceOfMeans(b *testing.B) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := dpa.Collect(m, benchKey, dpa.Config{NumTraces: 16, Seed: 7, MaxCycles: 25_000})
	if err != nil {
		b.Fatal(err)
	}
	ts.Window = trace.Window{Start: 7_000, End: 25_000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dpa.DifferenceOfMeans(ts, i%8, 0, uint32(i)%64)
	}
}

// benchKernel measures one full simulated run of an additional workload
// (the paper's generalisation beyond DES) at a policy.
func benchKernel(b *testing.B, k kernels.Kernel, policy compiler.Policy) {
	b.Helper()
	m, err := kernels.BuildSimple(k, policy)
	if err != nil {
		b.Fatal(err)
	}
	secret := make([]uint32, 16)
	public := make([]uint32, 16)
	for i := range secret {
		secret[i] = uint32(i + 1)
		public[i] = uint32(i * 5)
	}
	switch k.Name {
	case "tea":
		secret, public = secret[:4], public[:2]
	case "sha1":
		secret = secret[:5]
	}
	var st sim.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err = m.Run(secret, public)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.Energy.Total/1e6, "uJ")
	b.ReportMetric(float64(st.Cycles), "sim-cycles")
}

// BenchmarkTEA_* extend the §4.3 energy comparison to the TEA workload.
func BenchmarkTEA_PolicyNone(b *testing.B) { benchKernel(b, kernels.TEA(), compiler.PolicyNone) }
func BenchmarkTEA_PolicySelective(b *testing.B) {
	benchKernel(b, kernels.TEA(), compiler.PolicySelective)
}
func BenchmarkTEA_PolicyAllSecure(b *testing.B) {
	benchKernel(b, kernels.TEA(), compiler.PolicyAllSecure)
}

// BenchmarkAES_* extend the comparison to AES-128 (the companion paper's
// direction).
func BenchmarkAES_PolicyNone(b *testing.B) { benchKernel(b, kernels.AES128(), compiler.PolicyNone) }
func BenchmarkAES_PolicySelective(b *testing.B) {
	benchKernel(b, kernels.AES128(), compiler.PolicySelective)
}
func BenchmarkAES_PolicyAllSecure(b *testing.B) {
	benchKernel(b, kernels.AES128(), compiler.PolicyAllSecure)
}

// BenchmarkSHA1_* extend the comparison to the Secure Hash Standard
// compression (the paper's reference [10]) in the HMAC configuration.
func BenchmarkSHA1_PolicyNone(b *testing.B) { benchKernel(b, kernels.SHA1(), compiler.PolicyNone) }
func BenchmarkSHA1_PolicySelective(b *testing.B) {
	benchKernel(b, kernels.SHA1(), compiler.PolicySelective)
}
func BenchmarkSHA1_PolicyAllSecure(b *testing.B) {
	benchKernel(b, kernels.SHA1(), compiler.PolicyAllSecure)
}

// BenchmarkCPA_Unmasked runs the correlation power analysis distinguisher
// over one S-box (the strengthened attack; masked traces yield zero
// correlation).
func BenchmarkCPA_Unmasked(b *testing.B) {
	m, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		b.Fatal(err)
	}
	ts, err := dpa.Collect(m, benchKey, dpa.Config{NumTraces: 32, Seed: 9, MaxCycles: 25_000})
	if err != nil {
		b.Fatal(err)
	}
	ts.Window = trace.Window{Start: 7_000, End: 25_000}
	var peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := dpa.CPAAttackSBox(ts, i%8)
		peak = r.Best.Peak
	}
	b.ReportMetric(peak, "max-corr")
}

// BenchmarkDESDecrypt measures the simulated decryption path.
func BenchmarkDESDecrypt(b *testing.B) {
	m, err := desprog.NewDecrypt(compiler.PolicySelective)
	if err != nil {
		b.Fatal(err)
	}
	ct := des.Encrypt(benchKey, benchPlain)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pt, _, done, err := m.Encrypt(benchKey, ct, 0)
		if err != nil || !done || pt != benchPlain {
			b.Fatalf("decrypt failed: %v", err)
		}
	}
}
