// Command simbench measures the throughput of batch trace acquisition —
// the workload behind DPA trace collection — sequentially (workers=1) and
// in parallel (GOMAXPROCS workers) on the same simulation session, verifies
// the two trace sets are bit-identical, and writes the result as JSON.
//
// Usage:
//
//	simbench [-traces N] [-max N] [-policy none] [-o BENCH_parallel_traces.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
)

// Result is the benchmark record emitted as JSON.
type Result struct {
	Policy            string  `json:"policy"`
	Traces            int     `json:"traces"`
	MaxCycles         uint64  `json:"max_cycles"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	SequentialPerSec  float64 `json:"sequential_traces_per_sec"`
	ParallelPerSec    float64 `json:"parallel_traces_per_sec"`
	Speedup           float64 `json:"speedup"`
	BitIdentical      bool    `json:"bit_identical"`
	SequentialWorkers int     `json:"sequential_workers"`
	ParallelWorkers   int     `json:"parallel_workers"`
}

func main() {
	traces := flag.Int("traces", 64, "traces to collect per configuration")
	maxCycles := flag.Uint64("max", 25_000, "cycle budget per trace (first-round window)")
	policyStr := flag.String("policy", "none", "protection policy to benchmark")
	out := flag.String("o", "BENCH_parallel_traces.json", "output JSON file")
	flag.Parse()

	var policy compiler.Policy
	found := false
	for _, p := range compiler.Policies() {
		if p.String() == *policyStr {
			policy, found = p, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "simbench: unknown policy %q\n", *policyStr)
		os.Exit(2)
	}
	m, err := desprog.New(policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	collect := func(workers int) (*dpa.TraceSet, float64, error) {
		cfg := dpa.Config{NumTraces: *traces, Seed: 42, MaxCycles: *maxCycles, Workers: workers}
		start := time.Now()
		ts, err := dpa.Collect(m, 0x133457799BBCDFF1, cfg)
		return ts, time.Since(start).Seconds(), err
	}
	// Warm the session's worker pool and trace-size hint so both timed runs
	// see the same steady state.
	if _, _, err := collect(0); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	seqTS, seqSec, err := collect(1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	parWorkers := runtime.GOMAXPROCS(0)
	parTS, parSec, err := collect(parWorkers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}

	identical := len(seqTS.Traces) == len(parTS.Traces)
	for i := 0; identical && i < len(seqTS.Traces); i++ {
		if seqTS.Plaintexts[i] != parTS.Plaintexts[i] || len(seqTS.Traces[i]) != len(parTS.Traces[i]) {
			identical = false
			break
		}
		for j := range seqTS.Traces[i] {
			if seqTS.Traces[i][j] != parTS.Traces[i][j] {
				identical = false
				break
			}
		}
	}

	res := Result{
		Policy:            policy.String(),
		Traces:            *traces,
		MaxCycles:         *maxCycles,
		GOMAXPROCS:        parWorkers,
		SequentialSeconds: seqSec,
		ParallelSeconds:   parSec,
		SequentialPerSec:  float64(*traces) / seqSec,
		ParallelPerSec:    float64(*traces) / parSec,
		Speedup:           seqSec / parSec,
		BitIdentical:      identical,
		SequentialWorkers: 1,
		ParallelWorkers:   parWorkers,
	}
	fmt.Printf("policy=%s traces=%d max=%d\n", res.Policy, res.Traces, res.MaxCycles)
	fmt.Printf("sequential: %6.2f traces/s (%.2fs, 1 worker)\n", res.SequentialPerSec, seqSec)
	fmt.Printf("parallel:   %6.2f traces/s (%.2fs, %d workers)\n", res.ParallelPerSec, parSec, parWorkers)
	fmt.Printf("speedup: %.2fx  bit-identical: %v\n", res.Speedup, res.BitIdentical)
	if !identical {
		fmt.Fprintln(os.Stderr, "simbench: FAIL: parallel trace set diverged from sequential")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)
}
