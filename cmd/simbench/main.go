// Command simbench measures simulator performance on two axes and writes
// both results as JSON:
//
//  1. Core throughput: full DES encryptions on one predecoded pipeline,
//     untraced and traced, reporting simulated cycles/sec, ns/cycle and
//     allocs per encryption (-trials, BENCH_predecode.json).
//  2. Batch trace acquisition — the workload behind DPA trace collection —
//     sequentially (workers=1) and in parallel (GOMAXPROCS workers) on the
//     same simulation session, verifying the two trace sets are
//     bit-identical (BENCH_parallel_traces.json).
//
// With -blocks it instead benchmarks the block-compiled engine against the
// cycle-accurate core on both ISAs, verifying bit-identical ciphertexts and
// statistics, and writes BENCH_blockcompile.json.
//
// With -gang N (N > 1) it instead benchmarks gang-scheduled lockstep
// assessment against the scalar path on the fixed-vs-random DES TVLA
// workload for every protection policy, verifying that the gang t-vector is
// bit-identical to the scalar one, and writes BENCH_gang.json.
//
// Usage:
//
//	simbench [-traces N] [-trials N] [-max N] [-policy none]
//	         [-o BENCH_parallel_traces.json] [-core-o BENCH_predecode.json]
//	         [-blocks] [-blocks-o BENCH_blockcompile.json]
//	         [-gang N] [-gang-o BENCH_gang.json]
//	         [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/leakstat"
)

// Result is the batch-acquisition benchmark record emitted as JSON.
type Result struct {
	Policy     string `json:"policy"`
	Traces     int    `json:"traces"`
	MaxCycles  uint64 `json:"max_cycles"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// CoresLimited flags runs where the machine has fewer physical cores
	// than requested workers, so the parallel number understates what the
	// session layer delivers on adequate hardware.
	CoresLimited      bool    `json:"cores_limited"`
	SequentialSeconds float64 `json:"sequential_seconds"`
	ParallelSeconds   float64 `json:"parallel_seconds"`
	SequentialPerSec  float64 `json:"sequential_traces_per_sec"`
	ParallelPerSec    float64 `json:"parallel_traces_per_sec"`
	Speedup           float64 `json:"speedup"`
	BitIdentical      bool    `json:"bit_identical"`
	SequentialWorkers int     `json:"sequential_workers"`
	ParallelWorkers   int     `json:"parallel_workers"`
}

// CoreRun is one core-throughput configuration (traced or untraced).
type CoreRun struct {
	CyclesPerSec float64 `json:"cycles_per_sec"`
	NsPerCycle   float64 `json:"ns_per_cycle"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Seconds      float64 `json:"seconds"`
}

// CoreResult is the predecoded-core benchmark record emitted as JSON.
type CoreResult struct {
	Policy      string  `json:"policy"`
	Trials      int     `json:"trials"`
	CyclesPerOp uint64  `json:"cycles_per_encryption"`
	Untraced    CoreRun `json:"untraced"`
	Traced      CoreRun `json:"traced"`
}

// BlockISARun is the block-vs-cycle comparison on one ISA.
type BlockISARun struct {
	ISA         string  `json:"isa"`
	CyclesPerOp uint64  `json:"cycles_per_encryption"`
	Cycle       CoreRun `json:"cycle"`
	Block       CoreRun `json:"block"`
	Speedup     float64 `json:"speedup"`
	// BitIdentical reports that block mode reproduced the cycle-accurate
	// ciphertext, statistics and register file exactly.
	BitIdentical bool   `json:"bit_identical"`
	BlockRuns    uint64 `json:"block_runs"`
	BlockDeopts  uint64 `json:"block_deopts"`
}

// BlockResult is the block-compile benchmark record (BENCH_blockcompile.json).
type BlockResult struct {
	Policy string        `json:"policy"`
	Trials int           `json:"trials"`
	Runs   []BlockISARun `json:"runs"`
}

// GangPolicyRun is the scalar-vs-gang assessment comparison for one policy.
type GangPolicyRun struct {
	Policy        string  `json:"policy"`
	ScalarSeconds float64 `json:"scalar_seconds"`
	GangSeconds   float64 `json:"gang_seconds"`
	ScalarPerSec  float64 `json:"scalar_traces_per_sec"`
	GangPerSec    float64 `json:"gang_traces_per_sec"`
	Speedup       float64 `json:"speedup"`
	// BitIdentical reports that the gang run's per-sample t-vector (and so
	// the verdict) matched the scalar run bit-for-bit.
	BitIdentical bool    `json:"bit_identical"`
	THash        string  `json:"t_hash"`
	MaxAbsT      float64 `json:"max_abs_t"`
	Leak         bool    `json:"leak"`
	GangRuns     uint64  `json:"gang_runs"`
	GangDeopts   uint64  `json:"gang_deopts"`
}

// GangResult is the gang benchmark record (BENCH_gang.json).
type GangResult struct {
	Traces       int             `json:"traces"`
	MaxCycles    uint64          `json:"max_cycles"`
	Gang         int             `json:"gang"`
	Workers      int             `json:"workers"`
	Shards       int             `json:"shards"`
	GOMAXPROCS   int             `json:"gomaxprocs"`
	NumCPU       int             `json:"num_cpu"`
	CoresLimited bool            `json:"cores_limited"`
	Runs         []GangPolicyRun `json:"runs"`
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simbench:", err)
	os.Exit(1)
}

// benchCore runs full DES encryptions through the session layer on a single
// worker and reports simulated throughput plus the allocation cost of one
// encryption. The first run warms the worker pool and trace buffers so the
// timed loop sees the steady state the predecoded core is optimized for.
func benchCore(m *desprog.Machine, trials int, capture, blocks bool) (CoreRun, uint64, error) {
	const (
		key   = 0x133457799BBCDFF1
		plain = 0x0123456789ABCDEF
	)
	job, err := m.EncryptJob(key, plain, 0, capture)
	if err != nil {
		return CoreRun{}, 0, err
	}
	job.Blocks = blocks
	r := m.Runner()
	warm := r.Run(job)
	if warm.Err != nil || !warm.Done {
		return CoreRun{}, 0, fmt.Errorf("warm-up run failed: done=%v err=%v", warm.Done, warm.Err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var cycles uint64
	for i := 0; i < trials; i++ {
		res := r.Run(job)
		if res.Err != nil || !res.Done {
			return CoreRun{}, 0, fmt.Errorf("trial %d failed: done=%v err=%v", i, res.Done, res.Err)
		}
		cycles += res.Stats.Cycles
	}
	sec := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	run := CoreRun{
		CyclesPerSec: float64(cycles) / sec,
		NsPerCycle:   sec * 1e9 / float64(cycles),
		AllocsPerOp:  float64(after.Mallocs-before.Mallocs) / float64(trials),
		Seconds:      sec,
	}
	return run, cycles / uint64(trials), nil
}

// benchBlocks benchmarks the block-compiled engine against the cycle-accurate
// core on every block-compilable ISA, verifying that block mode reproduces the
// cycle-accurate ciphertext, statistics and register file bit-for-bit.
func benchBlocks(policy compiler.Policy, trials int) (BlockResult, error) {
	const (
		key   = 0x133457799BBCDFF1
		plain = 0x0123456789ABCDEF
	)
	res := BlockResult{Policy: policy.String(), Trials: trials}
	for _, isaName := range []string{"pisa", "rv32"} {
		target, ok := isa.TargetByName(isaName)
		if !ok {
			return res, fmt.Errorf("unknown target %q", isaName)
		}
		m, err := desprog.NewFull(compiler.Options{Policy: policy, Target: target}, energy.DefaultConfig())
		if err != nil {
			return res, err
		}
		cycle, cyclesPerOp, err := benchCore(m, trials, false, false)
		if err != nil {
			return res, fmt.Errorf("%s cycle mode: %w", isaName, err)
		}
		block, _, err := benchCore(m, trials, false, true)
		if err != nil {
			return res, fmt.Errorf("%s block mode: %w", isaName, err)
		}

		job, err := m.EncryptJob(key, plain, 0, false)
		if err != nil {
			return res, err
		}
		base := m.Runner().Run(job)
		job.Blocks = true
		blk := m.Runner().Run(job)
		if base.Err != nil || blk.Err != nil {
			return res, fmt.Errorf("%s identity run: cycle err=%v block err=%v", isaName, base.Err, blk.Err)
		}
		identical := base.Stats.Stats == blk.Stats.Stats && base.Regs == blk.Regs &&
			len(base.Mem[0]) == len(blk.Mem[0])
		for i := 0; identical && i < len(base.Mem[0]); i++ {
			identical = base.Mem[0][i] == blk.Mem[0][i]
		}

		res.Runs = append(res.Runs, BlockISARun{
			ISA:          isaName,
			CyclesPerOp:  cyclesPerOp,
			Cycle:        cycle,
			Block:        block,
			Speedup:      block.CyclesPerSec / cycle.CyclesPerSec,
			BitIdentical: identical,
			BlockRuns:    m.Runner().BlockRuns(),
			BlockDeopts:  m.Runner().BlockDeopts(),
		})
	}
	return res, nil
}

// tBitsHash is an order-sensitive FNV-1a hash over the raw float64 bits of a
// t-vector: equal hashes mean bit-identical statistics.
func tBitsHash(t []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range t {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// benchGang times the fixed-vs-random DES assessment once scalar and once
// gang-scheduled for every protection policy, asserting that both paths
// produce the same t-vector bit-for-bit. The shard count is part of the
// verdict's identity, so both runs pin the same Shards.
func benchGang(traces, gangW, workers int, maxCycles uint64) (GangResult, error) {
	const (
		key    = 0x133457799BBCDFF1
		plain  = 0x0123456789ABCDEF
		shards = 2
	)
	res := GangResult{
		Traces:       traces,
		MaxCycles:    maxCycles,
		Gang:         gangW,
		Workers:      workers,
		Shards:       shards,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		NumCPU:       runtime.NumCPU(),
		CoresLimited: runtime.NumCPU() < workers,
	}
	for _, policy := range []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure} {
		m, err := desprog.New(policy)
		if err != nil {
			return res, err
		}
		win, err := leakstat.DESMaskedWindow(m, key, plain, maxCycles)
		if err != nil {
			return res, fmt.Errorf("%s: window: %w", policy, err)
		}
		src := leakstat.DESKeySource(m, key, plain, 7, maxCycles)
		cfg := leakstat.Config{
			NumTraces: traces,
			Seed:      7,
			Shards:    shards,
			Workers:   workers,
			Window:    win,
		}
		var runs0, deopts0 uint64
		assess := func(gang int) (*leakstat.Report, float64, error) {
			c := cfg
			c.Gang = gang
			// Warm the session's worker pool (and gang engines) so the
			// timed run sees the steady state; the lockstep counters are
			// snapshotted after warming so the deltas cover the timed run.
			if _, err := leakstat.Assess(src, c); err != nil {
				return nil, 0, err
			}
			runs0, deopts0 = m.Runner().GangRuns(), m.Runner().GangDeopts()
			start := time.Now()
			rep, err := leakstat.Assess(src, c)
			return rep, time.Since(start).Seconds(), err
		}
		scalarRep, scalarSec, err := assess(0)
		if err != nil {
			return res, fmt.Errorf("%s: scalar assess: %w", policy, err)
		}
		gangRep, gangSec, err := assess(gangW)
		if err != nil {
			return res, fmt.Errorf("%s: gang assess: %w", policy, err)
		}
		scalarHash, gangHash := tBitsHash(scalarRep.T), tBitsHash(gangRep.T)
		res.Runs = append(res.Runs, GangPolicyRun{
			Policy:        policy.String(),
			ScalarSeconds: scalarSec,
			GangSeconds:   gangSec,
			ScalarPerSec:  float64(traces) / scalarSec,
			GangPerSec:    float64(traces) / gangSec,
			Speedup:       scalarSec / gangSec,
			BitIdentical:  scalarHash == gangHash && scalarRep.Leak == gangRep.Leak,
			THash:         gangHash,
			MaxAbsT:       gangRep.MaxAbsT,
			Leak:          gangRep.Leak,
			GangRuns:      m.Runner().GangRuns() - runs0,
			GangDeopts:    m.Runner().GangDeopts() - deopts0,
		})
	}
	return res, nil
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func main() {
	batch := cliconf.Batch{Traces: 64, Trials: 5, MaxCycles: 25_000}
	batch.AddFlags(flag.CommandLine)
	policyStr := flag.String("policy", "none", "protection policy to benchmark: "+cliconf.PolicyUsage())
	out := flag.String("o", "BENCH_parallel_traces.json", "batch benchmark output JSON file")
	coreOut := flag.String("core-o", "BENCH_predecode.json", "core benchmark output JSON file")
	blocks := flag.Bool("blocks", false, "benchmark the block-compiled engine vs the cycle-accurate core on both ISAs")
	blocksOut := flag.String("blocks-o", "BENCH_blockcompile.json", "block benchmark output JSON file")
	gangOut := flag.String("gang-o", "BENCH_gang.json", "gang benchmark output JSON file (used with -gang N)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if err := batch.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(2)
	}
	policy, err := cliconf.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(2)
	}
	traces, trials, maxCycles := &batch.Traces, &batch.Trials, &batch.MaxCycles
	m, err := desprog.New(policy)
	if err != nil {
		fatal(err)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if batch.Gang > 1 {
		workers := batch.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		res, err := benchGang(*traces, batch.Gang, workers, *maxCycles)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("gang (traces=%d max=%d gang=%d workers=%d shards=%d):\n",
			res.Traces, res.MaxCycles, res.Gang, res.Workers, res.Shards)
		if res.CoresLimited {
			fmt.Fprintf(os.Stderr, "simbench: warning: only %d CPUs for %d workers; parallel numbers are core-limited\n",
				res.NumCPU, res.Workers)
		}
		ok := true
		for _, r := range res.Runs {
			fmt.Printf("  %-10s scalar %7.1f traces/s  gang %7.1f traces/s  speedup %.2fx  bit-identical: %v  (gang runs %d, deopts %d)\n",
				r.Policy, r.ScalarPerSec, r.GangPerSec, r.Speedup, r.BitIdentical, r.GangRuns, r.GangDeopts)
			ok = ok && r.BitIdentical
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "simbench: FAIL: gang t-vector diverged from scalar")
			os.Exit(1)
		}
		writeJSON(*gangOut, res)
		return
	}

	if *blocks {
		res, err := benchBlocks(policy, *trials)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("blocks (policy=%s, %d trials):\n", res.Policy, res.Trials)
		ok := true
		for _, r := range res.Runs {
			fmt.Printf("  %-5s %d cycles/encryption\n", r.ISA, r.CyclesPerOp)
			fmt.Printf("    cycle: %12.0f cycles/s  %6.2f ns/cycle  %6.1f allocs/op\n",
				r.Cycle.CyclesPerSec, r.Cycle.NsPerCycle, r.Cycle.AllocsPerOp)
			fmt.Printf("    block: %12.0f cycles/s  %6.2f ns/cycle  %6.1f allocs/op\n",
				r.Block.CyclesPerSec, r.Block.NsPerCycle, r.Block.AllocsPerOp)
			fmt.Printf("    speedup: %.2fx  bit-identical: %v  (block runs %d, deopts %d)\n",
				r.Speedup, r.BitIdentical, r.BlockRuns, r.BlockDeopts)
			ok = ok && r.BitIdentical
		}
		if !ok {
			fmt.Fprintln(os.Stderr, "simbench: FAIL: block mode diverged from the cycle-accurate core")
			os.Exit(1)
		}
		writeJSON(*blocksOut, res)
		return
	}

	// Part 1: core throughput on the predecoded micro-op pipeline.
	untraced, cyclesPerOp, err := benchCore(m, *trials, false, false)
	if err != nil {
		fatal(err)
	}
	traced, _, err := benchCore(m, *trials, true, false)
	if err != nil {
		fatal(err)
	}
	core := CoreResult{
		Policy:      policy.String(),
		Trials:      *trials,
		CyclesPerOp: cyclesPerOp,
		Untraced:    untraced,
		Traced:      traced,
	}
	fmt.Printf("core (policy=%s, %d cycles/encryption, %d trials):\n", core.Policy, core.CyclesPerOp, core.Trials)
	fmt.Printf("  untraced: %8.0f cycles/s  %6.2f ns/cycle  %8.1f allocs/op\n",
		untraced.CyclesPerSec, untraced.NsPerCycle, untraced.AllocsPerOp)
	fmt.Printf("  traced:   %8.0f cycles/s  %6.2f ns/cycle  %8.1f allocs/op\n",
		traced.CyclesPerSec, traced.NsPerCycle, traced.AllocsPerOp)
	writeJSON(*coreOut, core)

	// Part 2: batch trace acquisition, sequential vs parallel.
	collect := func(workers int) (*dpa.TraceSet, float64, error) {
		cfg := dpa.Config{NumTraces: *traces, Seed: 42, MaxCycles: *maxCycles, Workers: workers}
		start := time.Now()
		ts, err := dpa.Collect(m, 0x133457799BBCDFF1, cfg)
		return ts, time.Since(start).Seconds(), err
	}
	// Warm the session's worker pool and trace-size hint so both timed runs
	// see the same steady state.
	if _, _, err := collect(0); err != nil {
		fatal(err)
	}
	seqTS, seqSec, err := collect(1)
	if err != nil {
		fatal(err)
	}
	parWorkers := runtime.GOMAXPROCS(0)
	if batch.Workers > 0 {
		parWorkers = batch.Workers
	}
	parTS, parSec, err := collect(parWorkers)
	if err != nil {
		fatal(err)
	}

	identical := len(seqTS.Traces) == len(parTS.Traces)
	for i := 0; identical && i < len(seqTS.Traces); i++ {
		if seqTS.Plaintexts[i] != parTS.Plaintexts[i] || len(seqTS.Traces[i]) != len(parTS.Traces[i]) {
			identical = false
			break
		}
		for j := range seqTS.Traces[i] {
			if seqTS.Traces[i][j] != parTS.Traces[i][j] {
				identical = false
				break
			}
		}
	}

	res := Result{
		Policy:            policy.String(),
		Traces:            *traces,
		MaxCycles:         *maxCycles,
		GOMAXPROCS:        parWorkers,
		NumCPU:            runtime.NumCPU(),
		CoresLimited:      runtime.NumCPU() < parWorkers,
		SequentialSeconds: seqSec,
		ParallelSeconds:   parSec,
		SequentialPerSec:  float64(*traces) / seqSec,
		ParallelPerSec:    float64(*traces) / parSec,
		Speedup:           seqSec / parSec,
		BitIdentical:      identical,
		SequentialWorkers: 1,
		ParallelWorkers:   parWorkers,
	}
	fmt.Printf("batch (policy=%s traces=%d max=%d):\n", res.Policy, res.Traces, res.MaxCycles)
	fmt.Printf("  sequential: %6.2f traces/s (%.2fs, 1 worker)\n", res.SequentialPerSec, seqSec)
	fmt.Printf("  parallel:   %6.2f traces/s (%.2fs, %d workers)\n", res.ParallelPerSec, parSec, parWorkers)
	fmt.Printf("  speedup: %.2fx  bit-identical: %v\n", res.Speedup, res.BitIdentical)
	if res.CoresLimited {
		fmt.Fprintf(os.Stderr, "simbench: warning: only %d CPUs for %d workers; parallel speedup is core-limited\n",
			res.NumCPU, parWorkers)
	}
	if !identical {
		fmt.Fprintln(os.Stderr, "simbench: FAIL: parallel trace set diverged from sequential")
		os.Exit(1)
	}
	writeJSON(*out, res)

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}
