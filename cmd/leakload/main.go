// Command leakload drives concurrent assessment load against a leakd
// instance and records the service's behavior under pressure: per-second
// status curves (200 / 429 shed / 504 expired), cache-hit counts, and
// end-to-end latency percentiles, written as a machine-readable JSON
// artifact (BENCH_leakd.json).
//
// By default it spins up an in-process leakd on a loopback listener
// (-self), so the artifact characterizes the admission-control design
// itself; point -url at a running daemon (or a coordinator fronting shard
// workers) to load-test a real deployment.
//
// Usage:
//
//	leakload [-url http://host:8090 | -self] [-clients 64] [-requests 512]
//	         [-traces 32] [-policy none] [-concurrency 2] [-queue 8]
//	         [-o BENCH_leakd.json]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"desmask/internal/server"
)

type result struct {
	second   int
	status   int
	cacheHit bool
	latency  time.Duration
}

type secondBucket struct {
	T         int `json:"t"`
	OK        int `json:"ok"`
	Rejected  int `json:"rejected"`
	Expired   int `json:"expired"`
	Other     int `json:"other"`
	CacheHits int `json:"cache_hits"`
}

type latencySummary struct {
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

type artifact struct {
	URL         string         `json:"url"`
	Clients     int            `json:"clients"`
	Requests    int            `json:"requests"`
	Traces      int            `json:"traces"`
	Policy      string         `json:"policy"`
	Seconds     float64        `json:"seconds"`
	RPS         float64        `json:"rps"`
	OK          int            `json:"ok"`
	Rejected    int            `json:"rejected"`
	Expired     int            `json:"expired"`
	Other       int            `json:"other"`
	CacheHits   int            `json:"cache_hits"`
	CacheHitPct float64        `json:"cache_hit_pct"`
	Latency     latencySummary `json:"latency"`
	PerSecond   []secondBucket `json:"per_second"`
	Generated   time.Time      `json:"generated"`
	SelfConfig  *server.Config `json:"self_config,omitempty"`
}

func percentileMs(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func main() {
	url := flag.String("url", "", "leakd base URL (empty = start an in-process instance)")
	self := flag.Bool("self", true, "run against an in-process leakd when -url is empty")
	clients := flag.Int("clients", 64, "concurrent clients")
	requests := flag.Int("requests", 512, "total requests across all clients")
	traces := flag.Int("traces", 32, "traces per assessment")
	maxCycles := flag.Uint64("max-cycles", 6000, "per-trace cycle budget")
	policy := flag.String("policy", "none", "protection policy")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request timeout_ms (0 = server default)")
	concurrency := flag.Int("concurrency", 2, "self instance: assessments executing at once")
	queue := flag.Int("queue", 8, "self instance: bounded wait queue")
	out := flag.String("o", "BENCH_leakd.json", "output artifact path")
	flag.Parse()

	base := *url
	var selfCfg *server.Config
	if base == "" {
		if !*self {
			fmt.Fprintln(os.Stderr, "leakload: need -url or -self")
			os.Exit(1)
		}
		cfg := server.Config{MaxConcurrent: *concurrency, MaxQueue: *queue}
		s := server.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakload:", err)
			os.Exit(1)
		}
		go http.Serve(ln, s.Handler())
		base = "http://" + ln.Addr().String()
		selfCfg = &cfg
		fmt.Printf("leakload: in-process leakd on %s (concurrency=%d queue=%d)\n",
			base, *concurrency, *queue)
	}

	body, err := json.Marshal(map[string]any{
		"kernel":     "des",
		"policy":     *policy,
		"traces":     *traces,
		"max_cycles": *maxCycles,
		"workers":    1,
		"timeout_ms": *timeoutMS,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakload:", err)
		os.Exit(1)
	}

	client := &http.Client{Timeout: 5 * time.Minute}
	results := make([]result, 0, *requests)
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan struct{})
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				t0 := time.Now()
				r := result{second: int(t0.Sub(start).Seconds())}
				resp, err := client.Post(base+"/v1/assess", "application/json", bytes.NewReader(body))
				if err != nil {
					r.status = -1
				} else {
					r.status = resp.StatusCode
					if resp.StatusCode == http.StatusOK {
						var v struct {
							CacheHit bool `json:"cache_hit"`
						}
						json.NewDecoder(resp.Body).Decode(&v)
						r.cacheHit = v.CacheHit
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				r.latency = time.Since(t0)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < *requests; i++ {
		work <- struct{}{}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	art := artifact{
		URL: base, Clients: *clients, Requests: *requests,
		Traces: *traces, Policy: *policy,
		Seconds: elapsed.Seconds(), Generated: time.Now().UTC(),
		SelfConfig: selfCfg,
	}
	buckets := map[int]*secondBucket{}
	var okLat []time.Duration
	for _, r := range results {
		b := buckets[r.second]
		if b == nil {
			b = &secondBucket{T: r.second}
			buckets[r.second] = b
		}
		switch r.status {
		case http.StatusOK:
			art.OK++
			b.OK++
			okLat = append(okLat, r.latency)
			if r.cacheHit {
				art.CacheHits++
				b.CacheHits++
			}
		case http.StatusTooManyRequests:
			art.Rejected++
			b.Rejected++
		case http.StatusGatewayTimeout:
			art.Expired++
			b.Expired++
		default:
			art.Other++
			b.Other++
		}
	}
	for _, b := range buckets {
		art.PerSecond = append(art.PerSecond, *b)
	}
	sort.Slice(art.PerSecond, func(i, j int) bool { return art.PerSecond[i].T < art.PerSecond[j].T })
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	art.Latency = latencySummary{
		P50Ms: percentileMs(okLat, 0.50),
		P90Ms: percentileMs(okLat, 0.90),
		P99Ms: percentileMs(okLat, 0.99),
		MaxMs: percentileMs(okLat, 1.00),
	}
	art.RPS = float64(len(results)) / elapsed.Seconds()
	if art.OK > 0 {
		art.CacheHitPct = 100 * float64(art.CacheHits) / float64(art.OK)
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakload:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "leakload:", err)
		os.Exit(1)
	}
	fmt.Printf("leakload: %d requests in %.1fs (%.1f rps): %d ok (%d cache hits, p50 %.1fms p99 %.1fms), %d shed, %d expired, %d other -> %s\n",
		len(results), art.Seconds, art.RPS, art.OK, art.CacheHits,
		art.Latency.P50Ms, art.Latency.P99Ms, art.Rejected, art.Expired, art.Other, *out)
}
