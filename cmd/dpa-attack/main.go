// Command dpa-attack runs the complete first-round key-recovery attack
// against a simulated DES build: collect energy traces under a chosen
// protection (policy, masking, shuffling), attack all eight S-boxes with the
// selected distinguisher to recover the 48 round-1 sub-key bits, and complete
// them to the full 56-bit key by trial encryption against one known
// (plaintext, ciphertext) pair.
//
// The distinguisher comes from the same structured attack object leakd and
// cmd/tvla share: -stat dom is Kocher's single-bit difference of means, -stat
// cpa the Hamming-weight correlation attack, and -stat cpa -order 2 the
// second-order centered-square correlation attack that defeats first-order
// boolean masking. -stat tvla is rejected here — leakage assessment without
// key recovery is cmd/tvla's job.
//
// Usage:
//
//	dpa-attack [-stat dom|cpa] [-order 1|2] [-policy none] [-shuffle]
//	           [-traces N] [-seed N] [-workers N] [-max N]
//	           [-key HEX] [-plaintext HEX] [-expect recover|fail]
//	           [-curve N1,N2,...] [-o attack.json]
//
// -curve runs the success-rate-vs-trace-count sweep behind
// BENCH_keyrecovery.json: for each listed trace count, the attack runs
// against the unprotected AND the shuffled build (one collection each, at the
// largest count; smaller counts attack its prefix — the plaintext sequence is
// drawn up front, so a prefix is exactly the smaller acquisition). -shuffle
// and -expect are ignored in curve mode.
//
// The exit status reports tool failure, not attack failure: an attack that
// does not recover the key exits 0 unless -expect recover was given (and
// vice versa with -expect fail), which is how the CI smoke tests assert that
// unprotected DES falls and protected DES holds.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"desmask/internal/cliconf"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
	"desmask/internal/energy"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dpa-attack:", err)
	os.Exit(1)
}

// boxRecord is one S-box's attack outcome in the JSON record.
type boxRecord struct {
	Box      int     `json:"box"`
	Guess    uint32  `json:"guess"`
	Truth    uint32  `json:"truth"`
	Correct  bool    `json:"correct"`
	Peak     float64 `json:"peak"`
	RunnerUp float64 `json:"runner_up_peak"`
	// Margin is Peak/RunnerUp — how decisively the best guess won (1.0 means
	// a dead heat, i.e. no signal).
	Margin float64 `json:"margin"`
}

// attackRecord is one full-key attack outcome.
type attackRecord struct {
	Stat      string  `json:"stat"`
	Order     int     `json:"order"`
	Policy    string  `json:"policy"`
	Shuffle   bool    `json:"shuffle"`
	Traces    int     `json:"traces"`
	Seed      int64   `json:"seed"`
	MaxCycles uint64  `json:"max_cycles"`
	Seconds   float64 `json:"seconds"`

	Boxes           []boxRecord `json:"boxes,omitempty"`
	RecoveredChunks int         `json:"recovered_chunks"`
	Key             string      `json:"key,omitempty"`
	KeyOK           bool        `json:"key_ok"`
}

// curveRecord is the BENCH_keyrecovery.json shape: attack success vs trace
// count, unprotected vs shuffled.
type curveRecord struct {
	Stat      string         `json:"stat"`
	Order     int            `json:"order"`
	Policy    string         `json:"policy"`
	Seed      int64          `json:"seed"`
	MaxCycles uint64         `json:"max_cycles"`
	Curve     []attackRecord `json:"curve"`
}

// attack runs the full-key attack over ts and fills a record (without the
// per-box detail).
func attack(ts *dpa.TraceSet, st dpa.Stat, key, plaintext, ciphertext uint64) (dpa.FullKeyResult, attackRecord) {
	start := time.Now()
	res := dpa.FullKeyAttack(ts, st, plaintext, ciphertext)
	res.VerifyAgainst(key)
	rec := attackRecord{
		Stat: st.String(), Traces: ts.Len(), Seconds: time.Since(start).Seconds(),
		RecoveredChunks: res.Recovered, KeyOK: res.OK,
	}
	if res.OK {
		rec.Key = fmt.Sprintf("%016X", res.Key)
	}
	return res, rec
}

// prefix views the first n traces of a set — exactly the acquisition a
// smaller -traces run would have produced, because the plaintext sequence is
// drawn up front from the seeded generator.
func prefix(ts *dpa.TraceSet, n int) *dpa.TraceSet {
	return &dpa.TraceSet{
		Plaintexts: ts.Plaintexts[:n], Traces: ts.Traces[:n],
		Window: ts.Window, OrigLens: ts.OrigLens[:n], Truncated: ts.Truncated,
	}
}

func writeOut(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

func main() {
	params := cliconf.DefaultAssess()
	// Attack-tool defaults: the victim is the unprotected build and 256 traces
	// recover the full key on it; assessments' selective default would make
	// every run a (correct but confusing) failure report.
	params.Policy = "none"
	params.Traces = 256
	params.AddFlags(flag.CommandLine)
	stat := flag.String("stat", "cpa", "distinguisher: dom | cpa (-order 2 selects the second-order centered-square cpa)")
	expect := flag.String("expect", "", "assert the outcome: recover (exit 1 unless the key is recovered) or fail (exit 1 if it is)")
	curve := flag.String("curve", "", "comma-separated trace counts: run the success-vs-traces sweep (unprotected and shuffled) instead of one attack")
	out := flag.String("o", "", "write the attack record as JSON to this file")
	flag.Parse()

	params.Attack.Stat = *stat
	r, err := params.Validate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dpa-attack:", err)
		os.Exit(2)
	}
	if r.Kernel != "des" {
		fmt.Fprintln(os.Stderr, "dpa-attack: key recovery is DES-only; -kernel must be des")
		os.Exit(2)
	}
	var st dpa.Stat
	switch {
	case r.StatV == "dom":
		st = dpa.StatDoM
	case r.StatV == "cpa" && r.OrderV == 2:
		st = dpa.StatCPA2
	case r.StatV == "cpa":
		st = dpa.StatCPA
	default:
		fmt.Fprintf(os.Stderr, "dpa-attack: -stat %s is a leakage assessment, not a key-recovery attack; use cmd/tvla\n", r.StatV)
		os.Exit(2)
	}
	switch *expect {
	case "", "recover", "fail":
	default:
		fmt.Fprintf(os.Stderr, "dpa-attack: -expect %q (want recover or fail)\n", *expect)
		os.Exit(2)
	}
	ciphertext := des.Encrypt(r.KeyV, r.PlaintextV)

	if *curve != "" {
		runCurve(r, st, *curve, ciphertext, *out)
		return
	}

	m, err := desprog.NewFull(r.CompilerOptions(), energy.DefaultConfig())
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	ts, err := dpa.Collect(m, r.KeyV, dpa.Config{
		NumTraces: r.Traces, Seed: r.Seed, MaxCycles: r.MaxCycles,
		Workers: r.Workers, Gang: r.Gang,
	})
	if err != nil {
		fatal(err)
	}
	collectSec := time.Since(start).Seconds()

	res, rec := attack(ts, st, r.KeyV, r.PlaintextV, ciphertext)
	rec.Order, rec.Policy, rec.Shuffle = r.OrderV, r.PolicyV.String(), r.ShuffleV
	rec.Seed, rec.MaxCycles = r.Seed, r.MaxCycles

	pol := rec.Policy
	if rec.Shuffle {
		pol += "+shuffle"
	}
	fmt.Printf("attack %-4s order=%d policy=%-16s traces=%d max=%d (collected in %.1fs, attacked in %.1fs)\n",
		rec.Stat, rec.Order, pol, rec.Traces, rec.MaxCycles, collectSec, rec.Seconds)
	for _, b := range res.Boxes {
		truth := des.SubkeySixBits(r.KeyV, b.Box)
		margin := 0.0
		if b.RunnerUp.Peak > 0 {
			margin = b.Best.Peak / b.RunnerUp.Peak
		}
		mark := " "
		if b.Best.Guess == truth {
			mark = "*"
		}
		fmt.Printf("  S%d: guess=%02o truth=%02o %s peak=%-10.4g runner-up=%-10.4g margin=%.2f\n",
			b.Box+1, b.Best.Guess, truth, mark, b.Best.Peak, b.RunnerUp.Peak, margin)
		rec.Boxes = append(rec.Boxes, boxRecord{
			Box: b.Box, Guess: b.Best.Guess, Truth: truth,
			Correct: b.Best.Guess == truth,
			Peak:    b.Best.Peak, RunnerUp: b.RunnerUp.Peak, Margin: margin,
		})
	}
	fmt.Printf("recovered %d/8 sub-key chunks\n", res.Recovered)
	if res.OK {
		fmt.Printf("KEY RECOVERED: %016X (parity bits zero) reproduces the known ciphertext\n", res.Key)
	} else {
		fmt.Println("key not recovered: no completion of the guessed chunks reproduces the known ciphertext")
	}

	if *out != "" {
		writeOut(*out, rec)
	}

	if *expect == "recover" && !res.OK {
		fmt.Fprintln(os.Stderr, "dpa-attack: FAIL: expected key recovery")
		os.Exit(1)
	}
	if *expect == "fail" && res.OK {
		fmt.Fprintln(os.Stderr, "dpa-attack: FAIL: expected the countermeasure to hold, but the key was recovered")
		os.Exit(1)
	}
}

// runCurve sweeps trace counts against the unprotected and shuffled builds of
// the configured policy: one acquisition per build at the largest count,
// attacked at each prefix.
func runCurve(r *cliconf.ResolvedAssess, st dpa.Stat, spec string, ciphertext uint64, out string) {
	var counts []int
	maxN := 0
	for _, f := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 8 {
			fatal(fmt.Errorf("bad -curve entry %q: want trace counts >= 8", f))
		}
		counts = append(counts, n)
		if n > maxN {
			maxN = n
		}
	}
	rec := curveRecord{
		Stat: st.String(), Order: r.OrderV, Policy: r.PolicyV.String(),
		Seed: r.Seed, MaxCycles: r.MaxCycles,
	}
	for _, shuffle := range []bool{false, true} {
		opt := r.CompilerOptions()
		opt.Shuffle = shuffle
		m, err := desprog.NewFull(opt, energy.DefaultConfig())
		if err != nil {
			fatal(err)
		}
		ts, err := dpa.Collect(m, r.KeyV, dpa.Config{
			NumTraces: maxN, Seed: r.Seed, MaxCycles: r.MaxCycles,
			Workers: r.Workers, Gang: r.Gang,
		})
		if err != nil {
			fatal(err)
		}
		for _, n := range counts {
			_, one := attack(prefix(ts, n), st, r.KeyV, r.PlaintextV, ciphertext)
			one.Boxes = nil
			one.Order, one.Policy, one.Shuffle = r.OrderV, rec.Policy, shuffle
			one.Seed, one.MaxCycles = r.Seed, r.MaxCycles
			pol := one.Policy
			if shuffle {
				pol += "+shuffle"
			}
			fmt.Printf("curve %-4s policy=%-16s traces=%4d recovered=%d/8 key=%v (%.1fs)\n",
				one.Stat, pol, n, one.RecoveredChunks, one.KeyOK, one.Seconds)
			rec.Curve = append(rec.Curve, one)
		}
	}
	if out == "" {
		out = "BENCH_keyrecovery.json"
	}
	writeOut(out, rec)
}
