// Command desenc encrypts or decrypts one 64-bit DES block, either with the
// reference implementation or on the simulated smart-card processor under a
// chosen protection policy.
//
// Usage:
//
//	desenc -key 133457799BBCDFF1 -block 0123456789ABCDEF [-decrypt]
//	       [-sim] [-policy selective] [-stats] [-trials N]
//
// -sim runs the (encrypt-only) simulated masked implementation and verifies
// it against the reference; -stats adds cycle and energy accounting.
// -trials N batch-verifies N additional random blocks against the reference
// implementation across the simulation session's worker pool.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/core"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/sim"
)

func main() {
	keyStr := flag.String("key", "133457799BBCDFF1", "64-bit key, hex")
	blockStr := flag.String("block", "0123456789ABCDEF", "64-bit block, hex")
	decrypt := flag.Bool("decrypt", false, "decrypt instead of encrypt")
	simulate := flag.Bool("sim", false, "run on the simulated smart-card processor")
	policyStr := flag.String("policy", "selective", "protection policy: "+cliconf.PolicyUsage())
	stats := flag.Bool("stats", false, "print cycle and energy statistics (with -sim)")
	trials := flag.Int("trials", 0, "batch-verify N random blocks against the reference (with -sim)")
	flag.Parse()

	key, err := cliconf.ParseHex64("key", *keyStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "desenc:", err)
		os.Exit(2)
	}
	block, err := cliconf.ParseHex64("block", *blockStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "desenc:", err)
		os.Exit(2)
	}

	if !*simulate {
		if *decrypt {
			fmt.Printf("%016X\n", des.Decrypt(key, block))
		} else {
			fmt.Printf("%016X\n", des.Encrypt(key, block))
		}
		return
	}

	pol, err := cliconf.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "desenc:", err)
		os.Exit(2)
	}
	var out uint64
	var st sim.Stats
	if *decrypt {
		m, err := desprog.NewDecrypt(pol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "desenc:", err)
			os.Exit(1)
		}
		pt, stats, done, err := m.Encrypt(key, block, 0)
		if err != nil || !done {
			fmt.Fprintln(os.Stderr, "desenc: simulated decryption failed:", err)
			os.Exit(1)
		}
		if want := des.Decrypt(key, block); pt != want {
			fmt.Fprintf(os.Stderr, "desenc: simulator/reference mismatch: %016X vs %016X\n", pt, want)
			os.Exit(1)
		}
		out, st = pt, stats
	} else {
		s, err := core.NewSystem(pol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "desenc:", err)
			os.Exit(1)
		}
		res, err := s.Encrypt(key, block)
		if err != nil {
			fmt.Fprintln(os.Stderr, "desenc:", err)
			os.Exit(1)
		}
		if want := des.Encrypt(key, block); res.Cipher != want {
			fmt.Fprintf(os.Stderr, "desenc: simulator/reference mismatch: %016X vs %016X\n", res.Cipher, want)
			os.Exit(1)
		}
		out, st = res.Cipher, res.Stats
	}
	fmt.Printf("%016X\n", out)
	if *stats {
		fmt.Printf("policy=%s cycles=%d insts=%d secure-insts=%d stalls=%d flushes=%d\n",
			pol, st.Cycles, st.Insts, st.SecureInst, st.Stalls, st.Flushes)
		fmt.Printf("energy=%.2f uJ avg=%.1f pJ/cycle\n", st.Energy.Total/1e6, st.AvgPJPerCycle())
	}
	if *trials > 0 && !*decrypt {
		if err := runTrials(pol, *trials); err != nil {
			fmt.Fprintln(os.Stderr, "desenc:", err)
			os.Exit(1)
		}
	}
}

// runTrials encrypts n random (key, block) pairs as one batch across the
// session's worker pool and checks every ciphertext against the reference
// implementation. The pairs derive from per-trial seeds, so a rerun checks
// the same vectors regardless of worker count.
func runTrials(pol compiler.Policy, n int) error {
	m, err := desprog.New(pol)
	if err != nil {
		return err
	}
	inputs := make([]desprog.Input, n)
	for i := range inputs {
		rng := rand.New(rand.NewSource(sim.DeriveSeed(0xDE5, i)))
		inputs[i] = desprog.Input{Key: rng.Uint64(), Plaintext: rng.Uint64()}
	}
	ciphers, err := m.CipherBatch(inputs, sim.Options{})
	if err != nil {
		return err
	}
	for i, in := range inputs {
		if want := des.Encrypt(in.Key, in.Plaintext); ciphers[i] != want {
			return fmt.Errorf("trial %d: simulator/reference mismatch: %016X vs %016X", i, ciphers[i], want)
		}
	}
	fmt.Printf("verified %d random blocks against the reference implementation\n", n)
	return nil
}
