// Command leakd serves leakage assessments over HTTP: POST a workload (or a
// MiniC source program), a masking policy and a trace count to /v1/assess
// and receive the TVLA verdict as JSON. See internal/server for the service
// semantics (admission control, per-request deadlines, compiled-program
// cache) and DESIGN.md §11 for the architecture.
//
// Usage:
//
//	leakd [-addr :8090] [-concurrency N] [-queue N] [-cache N]
//	      [-timeout 60s] [-max-traces N] [-workers N] [-drain 10s]
//	      [-data DIR] [-shard-workers URL,URL,...]
//
// With -data, accepted assessments are persisted before admission (a kill —
// even SIGKILL — loses no accepted work; incomplete jobs resume on restart
// with exactly-once verdicts), and the async job API (/v1/jobs, per-shard
// result streaming) is enabled. With -shard-workers, an assessment's shard
// sub-jobs fan out across the listed peer leakd processes via their
// /v1/shard endpoints; the fold is bit-identical to a single-node run.
//
// The daemon drains gracefully on SIGTERM/SIGINT: in-flight assessments get
// the drain window to finish, new connections are refused immediately.
//
// Example:
//
//	curl -s localhost:8090/v1/assess -d '{"kernel":"des","policy":"selective","traces":200}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"desmask/internal/jobstore"
	"desmask/internal/server"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	concurrency := flag.Int("concurrency", 2, "assessments executing at once")
	queue := flag.Int("queue", 8, "bounded wait queue; overflow is rejected with 429")
	cacheSize := flag.Int("cache", 16, "compiled-program LRU capacity")
	timeout := flag.Duration("timeout", 60*time.Second, "default per-request deadline")
	maxTraces := flag.Int("max-traces", 0, "per-request trace cap (0 = unlimited)")
	workers := flag.Int("workers", 0, "default shard worker pool per assessment (0 = GOMAXPROCS)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown window on SIGTERM")
	data := flag.String("data", "", "job store directory; enables durable jobs and /v1/jobs (empty = stateless)")
	shardWorkers := flag.String("shard-workers", "", "comma-separated peer leakd base URLs to fan shard sub-jobs across")
	flag.Parse()

	cfg := server.Config{
		MaxConcurrent:  *concurrency,
		MaxQueue:       *queue,
		CacheSize:      *cacheSize,
		DefaultTimeout: *timeout,
		MaxTraces:      *maxTraces,
		Workers:        *workers,
	}
	if *data != "" {
		st, err := jobstore.Open(*data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "leakd:", err)
			os.Exit(1)
		}
		cfg.Store = st
	}
	if *shardWorkers != "" {
		for _, u := range strings.Split(*shardWorkers, ",") {
			if u = strings.TrimSpace(u); u != "" {
				cfg.ShardWorkers = append(cfg.ShardWorkers, u)
			}
		}
	}

	s := server.New(cfg)
	if n, err := s.Recover(); err != nil {
		fmt.Fprintln(os.Stderr, "leakd: recover:", err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Printf("leakd: resumed %d incomplete job(s)\n", n)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("leakd: listening on %s (concurrency=%d queue=%d cache=%d timeout=%s)\n",
		*addr, *concurrency, *queue, *cacheSize, *timeout)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "leakd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("leakd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "leakd: shutdown:", err)
		os.Exit(1)
	}
	// Stop async job runners; interrupted jobs stay pending in the store
	// and resume on the next start.
	s.Close()
	fmt.Println("leakd: stopped")
}
