// Command maskcc is the masking compiler as a CLI: MiniC in, assembly with
// selectively secured instructions out, plus the forward-slice report.
//
// Usage:
//
//	maskcc [-policy selective] [-isa pisa] [-O] [-o out.s] [-slice]
//	       [-dump-ir] [-no-secure-indexing] prog.c
package main

import (
	"flag"
	"fmt"
	"os"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/isa"
)

func main() {
	policyStr := flag.String("policy", "selective", "protection policy: "+cliconf.PolicyUsage())
	isaStr := flag.String("isa", "", "target ISA backend: "+isa.TargetUsage())
	out := flag.String("o", "", "write assembly to this file (default stdout)")
	slice := flag.Bool("slice", false, "print the forward-slice report instead of assembly")
	noIdx := flag.Bool("no-secure-indexing", false, "disable the secure-indexing treatment (ablation)")
	optimize := flag.Bool("O", false, "enable the taint-sound optimization passes and gp-relative addressing")
	dumpIR := flag.Bool("dump-ir", false, "print the IR after lowering (and, with -O, after the pass pipeline)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: maskcc [flags] prog.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "maskcc:", err)
		os.Exit(1)
	}
	policy, err := cliconf.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maskcc:", err)
		os.Exit(2)
	}
	target, err := cliconf.ParseISA(*isaStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maskcc:", err)
		os.Exit(2)
	}
	opts := compiler.Options{
		Policy:                policy,
		Target:                target,
		DisableSecureIndexing: *noIdx,
		Optimize:              *optimize,
	}
	if *dumpIR {
		opts.DumpIR = os.Stdout
	}
	res, err := compiler.CompileWithOptions(string(src), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "maskcc:", err)
		os.Exit(1)
	}
	if *slice {
		fmt.Print(res.Report.String())
		return
	}
	if *dumpIR && *out == "" {
		// The IR dump was the requested output; suppress the assembly
		// listing unless -o directs it elsewhere.
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maskcc:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	fmt.Fprint(w, res.Asm)
	if *out != "" {
		fmt.Fprintf(os.Stderr, "%s", res.Report.String())
	}
}
