// Command tvla runs the streaming fixed-vs-random Welch t-test leakage
// assessment (TVLA) against the masked builds: the statistical
// generalization of the exact two-trace differentials in cmd/experiments,
// scaled to thousands of traces in constant memory.
//
// Report mode assesses one workload/policy (or every policy with -all) and
// prints — optionally writes as JSON — the max |t| verdict. For DES, -vary
// chooses what differs between the populations: "key" (default; the window
// is the whole masked region, [0, output permutation)) or "plaintext" (the
// window is round 1, past the insecure-by-design initial permutation).
//
// Bench mode (-bench) is the acceptance harness behind BENCH_tvla.json: it
// assesses unprotected and soundly masked DES builds at workers 1/4/16,
// checks the t-vectors are bit-identical across worker counts, checks the
// masked verdicts stay under threshold while the unprotected build exceeds
// it, reports the deliberately weak policies (seeds-only, naive-loadstore)
// without asserting on them, and compares throughput and memory against the
// materialized dpa.Collect baseline. It exits nonzero if any asserted
// property fails.
//
// Usage:
//
//	tvla [-kernel des|aes128|tea|sha1] [-policy selective | -all]
//	     [-vary key|plaintext] [-traces N] [-seed N] [-workers N]
//	     [-shards N] [-threshold T] [-max N] [-key HEX] [-plaintext HEX]
//	     [-blocks] [-leakcheck] [-o report.json]
//
// -blocks prechecks each population on the block-compiled engine — a cheap
// functional run confirming the build halts within -max cycles — before the
// streaming assessment starts. The assessment itself always runs on the
// cycle-accurate core: its per-cycle energy meter is exactly the observation
// that block mode excludes.
//
//	tvla -bench [-traces N] [-baseline-traces N] [-o BENCH_tvla.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"runtime"
	"time"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/desprog"
	"desmask/internal/dpa"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/kernels"
	"desmask/internal/leakcheck"
	"desmask/internal/leakstat"
	"desmask/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tvla:", err)
	os.Exit(1)
}

func writeJSON(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", path)
}

// assessment is one policy's report-mode record.
type assessment struct {
	Workload string `json:"workload"`
	Policy   string `json:"policy"`
	ISA      string `json:"isa"`
	Vary     string `json:"vary"`
	Shuffle  bool   `json:"shuffle,omitempty"`
	*leakstat.Report
	Seconds      float64 `json:"seconds"`
	TracesPerSec float64 `json:"traces_per_sec"`
	// Taint leak sites outside declassification, when -leakcheck ran.
	TaintLeakSites *int `json:"taint_leak_sites,omitempty"`
}

// desSetup builds the machine, source, and window of one DES assessment.
func desSetup(opt compiler.Options, vary string, key, plain uint64, seed int64, maxCycles uint64) (*desprog.Machine, leakstat.Source, trace.Window, error) {
	m, err := desprog.NewFull(opt, energy.DefaultConfig())
	if err != nil {
		return nil, leakstat.Source{}, trace.Window{}, err
	}
	var src leakstat.Source
	var win trace.Window
	switch vary {
	case "key":
		src = leakstat.DESKeySource(m, key, plain, seed, maxCycles)
		win, err = leakstat.DESMaskedWindow(m, key, plain, maxCycles)
	case "plaintext":
		src = leakstat.DESPlaintextSource(m, key, plain, seed, maxCycles)
		win, err = leakstat.DESRound1Window(m, key, plain, maxCycles)
	default:
		err = fmt.Errorf("unknown -vary %q (want key or plaintext)", vary)
	}
	return m, src, win, err
}

// precheckBlocks runs the first fixed and random job of a population with
// block mode requested: a fast functional pass that catches a faulting build
// or a -max budget that truncates the run before the assessment window ends
// — silent sample loss otherwise — before the streaming assessment spends
// real time. (Builds that halt within the budget run on the block engine;
// deliberately truncated runs deopt to the cycle core, which is still one
// run instead of thousands.)
func precheckBlocks(src leakstat.Source, win trace.Window, maxCycles uint64) error {
	for i, fixed := range map[int]bool{0: true, 1: false} {
		job, err := src.Job(i, fixed)
		if err != nil {
			return err
		}
		job.Blocks = true
		res := src.Runner.Run(job)
		if res.Err != nil {
			return fmt.Errorf("block precheck (fixed=%v): %w", fixed, res.Err)
		}
		if res.Stats.Cycles < uint64(win.End) {
			return fmt.Errorf("block precheck (fixed=%v): run covers %d cycles but the assessment window ends at %d; raise -max %d",
				fixed, res.Stats.Cycles, win.End, maxCycles)
		}
	}
	return nil
}

func assess(kernel string, opt compiler.Options, vary string, key, plain uint64,
	cfg leakstat.Config, maxCycles uint64, runLeakcheck, blocks bool) (*assessment, error) {
	var (
		src leakstat.Source
		win trace.Window
		err error

		taintN *int
	)
	switch kernel {
	case "des":
		var m *desprog.Machine
		m, src, win, err = desSetup(opt, vary, key, plain, cfg.Seed, maxCycles)
		if err != nil {
			return nil, err
		}
		if runLeakcheck {
			keyAddr, ok := m.Res.Program.Symbols[compiler.GlobalLabel("key")]
			if !ok {
				return nil, fmt.Errorf("no key global")
			}
			rep, err := leakcheck.CheckProgram(m.Res.Program, []leakcheck.TaintRange{{Addr: keyAddr, Words: 64}})
			if err != nil {
				return nil, err
			}
			lo := m.Res.Program.Symbols["f_output_permutation"]
			hi := m.Res.Program.Symbols["f_main"]
			n := len(rep.LeaksOutsideRegion(lo, hi))
			taintN = &n
		}
	default:
		k, ok := kernels.ByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown -kernel %q (want des, aes128, tea or sha1)", kernel)
		}
		if vary != "key" {
			return nil, fmt.Errorf("-vary %s is DES-only; kernel populations always vary the secret", vary)
		}
		m, err := kernels.Build(k, opt, energy.DefaultConfig())
		if err != nil {
			return nil, err
		}
		secret, public, mask := kernels.TVLAInputs(k)
		src = leakstat.KernelSecretSource(m, secret, public, mask, cfg.Seed, maxCycles)
		win, err = leakstat.KernelMaskedWindow(m, secret, public)
		if err != nil {
			return nil, err
		}
		if runLeakcheck {
			addr, ok := m.Res.Program.Symbols[compiler.GlobalLabel(k.SecretGlobal)]
			if !ok {
				return nil, fmt.Errorf("no %s global", k.SecretGlobal)
			}
			rep, err := leakcheck.CheckProgram(m.Res.Program, []leakcheck.TaintRange{{Addr: addr, Words: len(secret)}})
			if err != nil {
				return nil, err
			}
			lo, hi := m.Res.Program.Symbols["f_emit_output"], m.Res.Program.Symbols["f_main"]
			n := len(rep.LeaksOutsideRegion(lo, hi))
			taintN = &n
		}
		vary = "secret"
	}
	if blocks {
		if err := precheckBlocks(src, win, maxCycles); err != nil {
			return nil, err
		}
	}
	cfg.Window = win
	start := time.Now()
	rep, err := leakstat.Assess(src, cfg)
	if err != nil {
		return nil, err
	}
	sec := time.Since(start).Seconds()
	return &assessment{
		Workload: kernel, Policy: opt.Policy.String(), ISA: opt.Target.Name(), Vary: vary,
		Shuffle: opt.Shuffle,
		Report:  rep, Seconds: sec, TracesPerSec: float64(rep.NumTraces) / sec,
		TaintLeakSites: taintN,
	}, nil
}

func printAssessment(a *assessment) {
	verdict := "no leak"
	if a.Leak {
		verdict = "LEAK"
	}
	pol := a.Policy
	if a.Shuffle {
		pol += "+shuffle"
	}
	fmt.Printf("%-8s %-16s isa=%-4s vary=%-9s order=%d traces=%d window=[%d,%d) max|t|=%.4g @%d  %s (threshold %.1f)\n",
		a.Workload, pol, a.ISA, a.Vary, a.Order, a.NumTraces, a.WindowStart, a.WindowEnd,
		a.MaxAbsT, a.MaxTCycle, verdict, a.Threshold)
	fmt.Printf("         fixed/random=%d/%d shards=%d state=%.1f KiB  %.1f traces/s\n",
		a.FixedN, a.RandomN, a.Shards, float64(a.StateBytes)/1024, a.TracesPerSec)
	if a.TaintLeakSites != nil {
		fmt.Printf("         taint check: %d leak sites outside declassification\n", *a.TaintLeakSites)
	}
}

func main() {
	params := cliconf.DefaultAssess()
	params.AddFlags(flag.CommandLine)
	all := flag.Bool("all", false, "assess every policy")
	blocks := flag.Bool("blocks", false, "precheck each population on the block-compiled engine before assessing")
	runLeakcheck := flag.Bool("leakcheck", false, "also run the dynamic taint check on each build")
	bench := flag.Bool("bench", false, "benchmark mode: acceptance checks + BENCH_tvla.json")
	baselineTraces := flag.Int("baseline-traces", 1024, "materialized-baseline collection size (bench mode)")
	out := flag.String("o", "", "write the report/benchmark as JSON to this file")
	flag.Parse()

	r, err := params.Validate()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tvla:", err)
		os.Exit(2)
	}

	if *bench {
		runBench(r.Traces, *baselineTraces, r.Workers, r.MaxCycles, r.KeyV, r.PlaintextV, r.Seed, *out)
		return
	}

	pols := []compiler.Policy{r.PolicyV}
	if *all {
		pols = compiler.Policies()
	}

	cfg := r.Config()
	opt := r.CompilerOptions()
	var reports []*assessment
	for _, pol := range pols {
		opt.Policy = pol
		a, err := assess(r.Kernel, opt, r.Vary, r.KeyV, r.PlaintextV, cfg, r.MaxCycles, *runLeakcheck, *blocks)
		if err != nil {
			fatal(err)
		}
		printAssessment(a)
		reports = append(reports, a)
	}
	if *out != "" {
		if *all {
			writeJSON(*out, reports)
		} else {
			writeJSON(*out, reports[0])
		}
	}
}

// tBitsHash fingerprints a t-vector's exact bit pattern, the cheap witness
// for cross-worker bit-identity in the JSON record.
func tBitsHash(t []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range t {
		b := math.Float64bits(x)
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// benchRun is one (policy, workers) assessment in the benchmark record.
type benchRun struct {
	Policy       string  `json:"policy"`
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	TracesPerSec float64 `json:"traces_per_sec"`
	MaxAbsT      float64 `json:"max_abs_t"`
	Leak         bool    `json:"leak"`
	TBitsHash    string  `json:"t_bits_fnv64"`
	StateBytes   int     `json:"state_bytes"`
}

// benchBaseline is the materialized dpa.Collect comparison.
type benchBaseline struct {
	Traces       int     `json:"traces"`
	Seconds      float64 `json:"seconds"`
	TracesPerSec float64 `json:"traces_per_sec"`
	// RetainedBytes is the exact size of the materialized trace set (trace
	// buffers + plaintexts + lengths); MeasuredHeapBytes the observed
	// live-heap growth while holding it (0 if unrelated frees swamped it);
	// ExtrapolatedBytesAtN is the per-trace retained cost at the streaming
	// run's trace count — the O(N) memory the engine avoids.
	RetainedBytes        uint64  `json:"retained_bytes"`
	MeasuredHeapBytes    uint64  `json:"measured_heap_bytes"`
	BytesPerTrace        float64 `json:"bytes_per_trace"`
	ExtrapolatedBytesAtN uint64  `json:"extrapolated_bytes_at_n"`
}

// benchResult is the BENCH_tvla.json record.
type benchResult struct {
	Workload   string  `json:"workload"`
	Vary       string  `json:"vary"`
	Traces     int     `json:"traces"`
	MaxCycles  uint64  `json:"max_cycles"`
	WindowLen  int     `json:"window_len"`
	Threshold  float64 `json:"threshold"`
	GOMAXPROCS int     `json:"gomaxprocs"`

	Runs []benchRun `json:"runs"`
	// WeakPolicies reports the deliberately unsound policies (seeds-only,
	// naive-loadstore); they are expected to leak and are not asserted on.
	WeakPolicies []benchRun `json:"weak_policies"`

	BitIdenticalAcrossWorkers bool `json:"bit_identical_across_workers"`
	MaskedBelowThreshold      bool `json:"masked_below_threshold"`
	UnprotectedAboveThreshold bool `json:"unprotected_above_threshold"`

	EngineStateBytes      int           `json:"engine_state_bytes"`
	Baseline              benchBaseline `json:"materialized_baseline"`
	BaselineOverEngineMem float64       `json:"baseline_extrapolated_over_engine_bytes"`
}

func runBench(traces, baselineTraces, workers int, maxCycles uint64, key, plain uint64, seed int64, out string) {
	if out == "" {
		out = "BENCH_tvla.json"
	}
	_ = workers
	res := benchResult{
		Workload: "des", Vary: "key", Traces: traces, MaxCycles: maxCycles,
		Threshold: leakstat.DefaultThreshold, GOMAXPROCS: runtime.GOMAXPROCS(0),
		BitIdenticalAcrossWorkers: true,
		MaskedBelowThreshold:      true,
		UnprotectedAboveThreshold: false,
	}

	sound := []compiler.Policy{compiler.PolicyNone, compiler.PolicySelective, compiler.PolicyAllSecure}
	workerCounts := []int{1, 4, 16}
	for _, pol := range sound {
		_, src, win, err := desSetup(compiler.Options{Policy: pol, Target: isa.PISA}, "key", key, plain, seed, maxCycles)
		if err != nil {
			fatal(err)
		}
		res.WindowLen = win.Len()
		var ref []float64
		for _, w := range workerCounts {
			start := time.Now()
			rep, err := leakstat.Assess(src, leakstat.Config{
				NumTraces: traces, Seed: seed, Workers: w, Window: win,
			})
			if err != nil {
				fatal(err)
			}
			sec := time.Since(start).Seconds()
			run := benchRun{
				Policy: pol.String(), Workers: w, Seconds: sec,
				TracesPerSec: float64(traces) / sec,
				MaxAbsT:      rep.MaxAbsT, Leak: rep.Leak,
				TBitsHash:  tBitsHash(rep.T),
				StateBytes: rep.StateBytes,
			}
			res.Runs = append(res.Runs, run)
			res.EngineStateBytes = rep.StateBytes
			fmt.Printf("bench %-15s workers=%-2d  %8.1f traces/s  max|t|=%-10.4g leak=%-5v state=%.1f MiB\n",
				run.Policy, w, run.TracesPerSec, run.MaxAbsT, run.Leak, float64(run.StateBytes)/(1<<20))
			if ref == nil {
				ref = rep.T
				continue
			}
			for j := range ref {
				if math.Float64bits(ref[j]) != math.Float64bits(rep.T[j]) {
					res.BitIdenticalAcrossWorkers = false
					fmt.Fprintf(os.Stderr, "tvla: FAIL: %s T[%d] differs between workers=1 and workers=%d\n", pol, j, w)
					break
				}
			}
		}
		last := res.Runs[len(res.Runs)-1]
		if pol == compiler.PolicyNone {
			res.UnprotectedAboveThreshold = last.MaxAbsT > leakstat.DefaultThreshold
		} else if last.MaxAbsT >= leakstat.DefaultThreshold {
			res.MaskedBelowThreshold = false
		}
	}

	// The deliberately weak policies: reported, not asserted — seeds-only
	// leaves non-seed key loads unprotected, naive-loadstore leaves ALU ops
	// on secrets unprotected; TVLA should rediscover both.
	for _, pol := range []compiler.Policy{compiler.PolicySeedsOnly, compiler.PolicyNaiveLoadStore} {
		_, src, win, err := desSetup(compiler.Options{Policy: pol, Target: isa.PISA}, "key", key, plain, seed, maxCycles)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		rep, err := leakstat.Assess(src, leakstat.Config{
			NumTraces: traces, Seed: seed, Window: win,
		})
		if err != nil {
			fatal(err)
		}
		sec := time.Since(start).Seconds()
		run := benchRun{
			Policy: pol.String(), Workers: 0, Seconds: sec,
			TracesPerSec: float64(traces) / sec,
			MaxAbsT:      rep.MaxAbsT, Leak: rep.Leak,
			TBitsHash: tBitsHash(rep.T), StateBytes: rep.StateBytes,
		}
		res.WeakPolicies = append(res.WeakPolicies, run)
		fmt.Printf("weak  %-15s             %8.1f traces/s  max|t|=%-10.4g leak=%v\n",
			run.Policy, run.TracesPerSec, run.MaxAbsT, run.Leak)
	}

	// Materialized baseline: dpa.Collect holds every trace in memory, so its
	// footprint grows linearly with N — measure at a feasible size and
	// extrapolate to the streaming run's N.
	if baselineTraces > traces {
		baselineTraces = traces
	}
	mNone, err := desprog.New(compiler.PolicyNone)
	if err != nil {
		fatal(err)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ts, err := dpa.Collect(mNone, key, dpa.Config{
		NumTraces: baselineTraces, Seed: seed, MaxCycles: maxCycles,
	})
	if err != nil {
		fatal(err)
	}
	sec := time.Since(start).Seconds()
	runtime.GC()
	runtime.ReadMemStats(&after)
	var heap uint64
	if after.HeapAlloc > before.HeapAlloc {
		heap = after.HeapAlloc - before.HeapAlloc
	}
	var retained uint64
	for _, tr := range ts.Traces {
		retained += uint64(cap(tr)) * 8
	}
	retained += uint64(len(ts.Plaintexts))*8 + uint64(len(ts.OrigLens))*8
	perTrace := float64(retained) / float64(ts.Len())
	res.Baseline = benchBaseline{
		Traces: ts.Len(), Seconds: sec, TracesPerSec: float64(ts.Len()) / sec,
		RetainedBytes: retained, MeasuredHeapBytes: heap, BytesPerTrace: perTrace,
		ExtrapolatedBytesAtN: uint64(perTrace * float64(traces)),
	}
	res.BaselineOverEngineMem = float64(res.Baseline.ExtrapolatedBytesAtN) / float64(res.EngineStateBytes)
	fmt.Printf("baseline dpa.Collect: %d traces  %8.1f traces/s  retained=%.1f MiB (%.0f B/trace, %.1f MiB at N=%d)\n",
		ts.Len(), res.Baseline.TracesPerSec, float64(retained)/(1<<20), perTrace,
		float64(res.Baseline.ExtrapolatedBytesAtN)/(1<<20), traces)
	fmt.Printf("memory: engine %.1f MiB constant vs baseline %.1f MiB at N=%d (%.0fx)\n",
		float64(res.EngineStateBytes)/(1<<20),
		float64(res.Baseline.ExtrapolatedBytesAtN)/(1<<20), traces, res.BaselineOverEngineMem)

	writeJSON(out, res)
	if !res.BitIdenticalAcrossWorkers || !res.MaskedBelowThreshold || !res.UnprotectedAboveThreshold {
		fmt.Fprintf(os.Stderr, "tvla: FAIL: bit_identical=%v masked_below=%v unprotected_above=%v\n",
			res.BitIdenticalAcrossWorkers, res.MaskedBelowThreshold, res.UnprotectedAboveThreshold)
		os.Exit(1)
	}
	fmt.Println("acceptance: bit-identical across workers; masked < 4.5; unprotected > 4.5")
}
