// Command leakcheck compiles a MiniC program and verifies its masking with
// dynamic taint tracking: the `secure` globals are tainted, the program is
// executed on a shadow-taint interpreter, and every instruction that touches
// secret-derived data without its secure bit is reported.
//
// Usage:
//
//	leakcheck [-policy selective] prog.c
//	leakcheck -all prog.c
//
// -all checks the program under every protection policy in parallel and
// prints one summary row per policy. Exit status 1 when leaks are found
// (declassification via public() excluded by listing, not by exit status —
// review the report).
package main

import (
	"flag"
	"fmt"
	"os"

	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/leakcheck"
	"desmask/internal/sim"
)

func main() {
	policyStr := flag.String("policy", "selective", "protection policy: "+cliconf.PolicyUsage())
	all := flag.Bool("all", false, "check every policy in parallel and print a summary table")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: leakcheck [flags] prog.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(1)
	}
	if *all {
		if err := checkAll(string(src)); err != nil {
			fmt.Fprintln(os.Stderr, "leakcheck:", err)
			os.Exit(1)
		}
		return
	}
	policy, err := cliconf.ParsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(2)
	}
	res, err := compiler.Compile(string(src), policy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(1)
	}
	for _, w := range res.Report.TimingWarnings {
		fmt.Printf("warning: %s: secret-dependent branch (timing channel)\n", w)
	}

	c, err := leakcheck.New(res.Program)
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(1)
	}
	// Taint every secure global, filling it with deterministic values.
	for _, seed := range res.Report.Seeds {
		g := res.Analysis.File.FindGlobal(seed)
		if g == nil {
			continue // function-local seed: tainted when written
		}
		n := 1
		if g.IsArray {
			n = g.ArrayLen
		}
		addr, ok := res.Program.Symbols[compiler.GlobalLabel(g.Name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "leakcheck: no symbol for secure global %q\n", g.Name)
			os.Exit(1)
		}
		for i := 0; i < n; i++ {
			if err := c.SetWord(addr+uint32(4*i), uint32(i)*0x9e37+1, true); err != nil {
				fmt.Fprintln(os.Stderr, "leakcheck:", err)
				os.Exit(1)
			}
		}
		fmt.Printf("tainted %s[%d words] at %#x\n", g.Name, n, addr)
	}

	rep, err := c.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "leakcheck:", err)
		os.Exit(1)
	}
	fmt.Printf("executed %d instructions; %d secure instructions ran on clean data\n",
		rep.Insts, rep.SecureInsecureData)
	if len(rep.Leaks) == 0 {
		fmt.Println("no insecure instruction ever touched secret-derived data")
		return
	}
	fmt.Printf("%d leaking instruction sites (%d dynamic occurrences):\n",
		len(rep.Leaks), rep.LeakCount())
	for _, l := range rep.Leaks {
		region := ""
		if name, ok := res.Program.SymbolAt(l.PC); ok {
			region = " in " + name
		}
		fmt.Printf("  pc %#06x%s: %-28v x%d\n", l.PC, region, l.Inst, l.Count)
	}
	fmt.Println("note: leaks inside public() declassification regions are expected;")
	fmt.Println("anything else is exploitable by differential power analysis.")
	os.Exit(1)
}

// checkAll compiles the program under every policy and runs the shadow-taint
// checks as one parallel batch through the leakcheck worker pool.
func checkAll(src string) error {
	pols := compiler.Policies()
	results := make([]*compiler.Result, len(pols))
	if err := sim.ForEach(len(pols), 0, func(i int) error {
		res, err := compiler.Compile(src, pols[i])
		results[i] = res
		return err
	}); err != nil {
		return err
	}
	jobs := make([]leakcheck.CheckJob, len(pols))
	for i, res := range results {
		res := res
		jobs[i] = leakcheck.CheckJob{
			Prog: res.Program,
			Setup: func(c *leakcheck.Checker) error {
				return taintSecrets(c, res)
			},
		}
	}
	reports, err := leakcheck.RunBatch(jobs, 0)
	if err != nil {
		return err
	}
	leaking := false
	fmt.Printf("%-16s %12s %12s %14s %12s\n", "policy", "leak sites", "dynamic", "wasted-secure", "insts")
	for i, rep := range reports {
		if len(rep.Leaks) > 0 {
			leaking = true
		}
		fmt.Printf("%-16s %12d %12d %14d %12d\n",
			pols[i], len(rep.Leaks), rep.LeakCount(), rep.SecureInsecureData, rep.Insts)
	}
	if leaking {
		fmt.Println("note: leaks inside public() declassification regions are expected;")
		fmt.Println("anything else is exploitable by differential power analysis.")
		os.Exit(1)
	}
	return nil
}

// taintSecrets fills and taints every secure global with deterministic
// values, mirroring the single-policy path.
func taintSecrets(c *leakcheck.Checker, res *compiler.Result) error {
	for _, seed := range res.Report.Seeds {
		g := res.Analysis.File.FindGlobal(seed)
		if g == nil {
			continue // function-local seed: tainted when written
		}
		n := 1
		if g.IsArray {
			n = g.ArrayLen
		}
		addr, ok := res.Program.Symbols[compiler.GlobalLabel(g.Name)]
		if !ok {
			return fmt.Errorf("no symbol for secure global %q", g.Name)
		}
		for i := 0; i < n; i++ {
			if err := c.SetWord(addr+uint32(4*i), uint32(i)*0x9e37+1, true); err != nil {
				return err
			}
		}
	}
	return nil
}
