// Command experiments regenerates every figure and table of the paper
// "Masking the Energy Behavior of DES Encryption" (DATE 2003) on the
// simulated smart-card system and prints the measured series/rows next to
// the paper's published values.
//
// Usage:
//
//	experiments [-traces N] [-workers N] [-csv dir]
//
// -traces controls the DPA trace count (default 256, full key recovery).
// -workers bounds the simulation worker pools (default GOMAXPROCS); results
// are bit-identical for every worker count.
// -csv, when set, additionally writes the Figure 6-12 series as CSV files
// into the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"desmask/internal/experiments"
	"desmask/internal/trace"
)

func main() {
	traces := flag.Int("traces", 256, "number of DPA traces to collect per system")
	workers := flag.Int("workers", 0, "simulation worker pool size; <= 0 uses GOMAXPROCS")
	csvDir := flag.String("csv", "", "directory to write figure CSV series into (optional)")
	plot := flag.Bool("plot", false, "render ASCII charts of Figures 6, 8 and 9")
	flag.Parse()

	if *workers > 0 {
		// The batch layers size their pools from GOMAXPROCS; clamping it
		// here bounds every pool in the run at once.
		runtime.GOMAXPROCS(*workers)
	}

	if err := experiments.RunAll(os.Stdout, *traces); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *plot {
		if err := renderPlots(); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *csvDir != "" {
		if err := writeCSVs(*csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Println("\nCSV series written to", *csvDir)
	}
}

func renderPlots() error {
	f6, err := experiments.Figure6(experiments.DefaultKey, experiments.DefaultPlain, 10)
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 6 — energy profile (pJ/cycle, whole encryption; note the 16 rounds):")
	fmt.Print(trace.Plot(f6.Series, 96, 10))

	f8, err := experiments.Figure8(experiments.DefaultKey, experiments.DefaultKeyBit1, experiments.DefaultPlain)
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 8 — |differential| for two keys, round 1, BEFORE masking (pJ):")
	abs8 := make([]float64, len(f8.Diff))
	for i, v := range f8.Diff {
		if v < 0 {
			v = -v
		}
		abs8[i] = v
	}
	fmt.Print(trace.Plot(abs8, 96, 8))

	f9, err := experiments.Figure9(experiments.DefaultKey, experiments.DefaultKeyBit1, experiments.DefaultPlain)
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 9 — the same differential AFTER masking (pJ):")
	abs9 := make([]float64, len(f9.Diff))
	for i, v := range f9.Diff {
		if v < 0 {
			v = -v
		}
		abs9[i] = v
	}
	fmt.Print(trace.Plot(abs9, 96, 8))
	return nil
}

func writeCSVs(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, headers []string, cols ...[]float64) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return trace.WriteCSV(f, headers, cols...)
	}

	f6, err := experiments.Figure6(experiments.DefaultKey, experiments.DefaultPlain, 10)
	if err != nil {
		return err
	}
	if err := write("figure6.csv", []string{"cycle", "pj_per_cycle"},
		trace.Series(len(f6.Series), f6.BucketWidth), f6.Series); err != nil {
		return err
	}

	figs := []struct {
		name string
		run  func() (*experiments.DifferentialResult, error)
	}{
		{"figure7.csv", experiments.Figure7},
		{"figure8.csv", func() (*experiments.DifferentialResult, error) {
			return experiments.Figure8(experiments.DefaultKey, experiments.DefaultKeyBit1, experiments.DefaultPlain)
		}},
		{"figure9.csv", func() (*experiments.DifferentialResult, error) {
			return experiments.Figure9(experiments.DefaultKey, experiments.DefaultKeyBit1, experiments.DefaultPlain)
		}},
		{"figure10.csv", func() (*experiments.DifferentialResult, error) {
			return experiments.Figure10(experiments.DefaultKey, experiments.DefaultPlain, experiments.DefaultPlain2)
		}},
	}
	for _, fig := range figs {
		r, err := fig.run()
		if err != nil {
			return err
		}
		x := make([]float64, len(r.Diff))
		for i := range x {
			x[i] = float64(r.Window.Start + i)
		}
		if err := write(fig.name, []string{"cycle", "diff_pj"}, x, r.Diff); err != nil {
			return err
		}
	}

	f11, err := experiments.Figure11(experiments.DefaultKey, experiments.DefaultPlain, experiments.DefaultPlain2)
	if err != nil {
		return err
	}
	x := make([]float64, len(f11.IP.Diff))
	for i := range x {
		x[i] = float64(f11.IP.Window.Start + i)
	}
	if err := write("figure11_ip.csv", []string{"cycle", "diff_pj"}, x, f11.IP.Diff); err != nil {
		return err
	}

	f12, err := experiments.Figure12(experiments.DefaultKey, experiments.DefaultPlain)
	if err != nil {
		return err
	}
	x = make([]float64, len(f12.Overhead))
	for i := range x {
		x[i] = float64(f12.Window.Start + i)
	}
	return write("figure12.csv", []string{"cycle", "overhead_pj"}, x, f12.Overhead)
}
