// Command optbench measures what the optimizing backend buys on the paper's
// workload: for every protection policy it compiles the DES program with and
// without -O, runs one encryption on the cycle-accurate simulator, verifies
// the two builds agree bit-for-bit, and writes the static instruction counts,
// simulated cycle counts and energy totals as JSON
// (BENCH_compiler_opt.json via `make bench-json`).
//
// Usage:
//
//	optbench [-o BENCH_compiler_opt.json] [-key hex16] [-block hex16]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"desmask/internal/compiler"
	"desmask/internal/des"
	"desmask/internal/desprog"
	"desmask/internal/energy"
)

// PolicyResult is one policy's with/without-optimizer comparison.
type PolicyResult struct {
	Policy string `json:"policy"`

	StaticInstrs    int     `json:"static_instructions"`
	StaticInstrsOpt int     `json:"static_instructions_opt"`
	StaticReduction float64 `json:"static_reduction_pct"`

	EncryptCycles    uint64  `json:"encrypt_cycles"`
	EncryptCyclesOpt uint64  `json:"encrypt_cycles_opt"`
	CycleReduction   float64 `json:"cycle_reduction_pct"`

	EnergyUJ    float64 `json:"energy_uj"`
	EnergyUJOpt float64 `json:"energy_uj_opt"`

	Cipher string `json:"cipher"`
}

// Output is the whole benchmark document.
type Output struct {
	Workload  string         `json:"workload"`
	Key       string         `json:"key"`
	Plaintext string         `json:"plaintext"`
	Results   []PolicyResult `json:"results"`
}

func run(policy compiler.Policy, optimize bool, key, block uint64) (int, uint64, float64, uint64, error) {
	m, err := desprog.NewFull(compiler.Options{Policy: policy, Optimize: optimize}, energy.DefaultConfig())
	if err != nil {
		return 0, 0, 0, 0, err
	}
	cipher, stats, done, err := m.Encrypt(key, block, 0)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if !done {
		return 0, 0, 0, 0, fmt.Errorf("policy %v: encryption did not finish", policy)
	}
	return len(m.Res.Program.Text), stats.Cycles, stats.Energy.Total / 1e6, cipher, nil
}

func main() {
	out := flag.String("o", "BENCH_compiler_opt.json", "output JSON path (- for stdout)")
	keyHex := flag.String("key", "133457799BBCDFF1", "DES key, 16 hex digits")
	blockHex := flag.String("block", "0123456789ABCDEF", "plaintext block, 16 hex digits")
	flag.Parse()

	key, err := strconv.ParseUint(*keyHex, 16, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optbench: bad -key:", err)
		os.Exit(2)
	}
	block, err := strconv.ParseUint(*blockHex, 16, 64)
	if err != nil {
		fmt.Fprintln(os.Stderr, "optbench: bad -block:", err)
		os.Exit(2)
	}
	want := des.Encrypt(key, block)

	doc := Output{
		Workload:  "des-encrypt",
		Key:       fmt.Sprintf("%016X", key),
		Plaintext: fmt.Sprintf("%016X", block),
	}
	for _, policy := range compiler.Policies() {
		instrs, cycles, uj, cipher, err := run(policy, false, key, block)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optbench:", err)
			os.Exit(1)
		}
		instrsOpt, cyclesOpt, ujOpt, cipherOpt, err := run(policy, true, key, block)
		if err != nil {
			fmt.Fprintln(os.Stderr, "optbench:", err)
			os.Exit(1)
		}
		if cipher != want || cipherOpt != want {
			fmt.Fprintf(os.Stderr, "optbench: policy %v: cipher mismatch: plain %016X opt %016X reference %016X\n",
				policy, cipher, cipherOpt, want)
			os.Exit(1)
		}
		doc.Results = append(doc.Results, PolicyResult{
			Policy:           policy.String(),
			StaticInstrs:     instrs,
			StaticInstrsOpt:  instrsOpt,
			StaticReduction:  100 * (1 - float64(instrsOpt)/float64(instrs)),
			EncryptCycles:    cycles,
			EncryptCyclesOpt: cyclesOpt,
			CycleReduction:   100 * (1 - float64(cyclesOpt)/float64(cycles)),
			EnergyUJ:         uj,
			EnergyUJOpt:      ujOpt,
			Cipher:           fmt.Sprintf("%016X", cipher),
		})
		fmt.Fprintf(os.Stderr, "%-16s instrs %4d -> %4d (%.1f%%)  cycles %7d -> %7d (%.1f%%)  %.2f -> %.2f uJ\n",
			policy, instrs, instrsOpt, 100*(1-float64(instrsOpt)/float64(instrs)),
			cycles, cyclesOpt, 100*(1-float64(cyclesOpt)/float64(cycles)), uj, ujOpt)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "optbench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "optbench:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
}
