// Command simrun executes a program on the cycle-accurate simulator through
// a simulation session, optionally dumping the per-cycle energy trace as
// CSV. The input is either a .s file assembled for the PISA target, or — with
// -c — MiniC source compiled in-process for any registered ISA backend (the
// text assembler is PISA-only, so non-PISA targets require -c).
//
// Usage:
//
//	simrun [-max N] [-blocks] [-trace out.csv] [-bucket N] [-listing] [-regs] prog.s
//	simrun -c [-policy selective] [-isa pisa] [-O] prog.c
package main

import (
	"flag"
	"fmt"
	"os"

	"desmask/internal/asm"
	"desmask/internal/cliconf"
	"desmask/internal/compiler"
	"desmask/internal/cpu"
	"desmask/internal/energy"
	"desmask/internal/isa"
	"desmask/internal/sim"
	"desmask/internal/trace"
)

func main() {
	compile := flag.Bool("c", false, "input is MiniC source; compile it in-process (required for non-PISA targets)")
	policyStr := flag.String("policy", "selective", "protection policy with -c: "+cliconf.PolicyUsage())
	isaStr := flag.String("isa", "", "target ISA backend with -c: "+isa.TargetUsage())
	optimize := flag.Bool("O", false, "enable the optimization passes with -c")
	maxCycles := flag.Uint64("max", 10_000_000, "maximum simulated cycles")
	blocks := flag.Bool("blocks", false, "run on the block-compiled engine (no per-cycle energy; ignored with -trace)")
	traceOut := flag.String("trace", "", "write the per-cycle energy trace to this CSV file")
	bucket := flag.Int("bucket", 1, "aggregate the trace every N cycles (with -trace)")
	listing := flag.Bool("listing", false, "print the disassembly listing before running")
	regs := flag.Bool("regs", false, "dump register values after the run")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: simrun [flags] prog.s  |  simrun -c [flags] prog.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "simrun:", err)
		os.Exit(1)
	}
	var prog *asm.Program
	if *compile {
		policy, err := cliconf.ParsePolicy(*policyStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(2)
		}
		target, err := cliconf.ParseISA(*isaStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(2)
		}
		res, err := compiler.CompileWithOptions(string(src), compiler.Options{
			Policy: policy, Target: target, Optimize: *optimize,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(1)
		}
		prog = res.Program
	} else {
		if *isaStr != "" && *isaStr != isa.PISA.Name() {
			fmt.Fprintf(os.Stderr, "simrun: -isa %s requires -c; the text assembler is PISA-only\n", *isaStr)
			os.Exit(2)
		}
		prog, err = asm.Assemble(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(1)
		}
	}
	if *listing {
		fmt.Print(prog.Listing())
	}
	runner := sim.NewRunner(prog, energy.DefaultConfig())
	res := runner.Run(sim.Job{MaxCycles: *maxCycles, Trace: *traceOut != "", Blocks: *blocks})
	st := res.Stats
	fmt.Printf("halted=%v cycles=%d insts=%d secure-insts=%d stalls=%d flushes=%d\n",
		res.Done, st.Cycles, st.Insts, st.SecureInst, st.Stalls, st.Flushes)
	if runner.BlockRuns() > 0 {
		fmt.Printf("static-energy=%.3f uJ (block mode: data-independent floor, no meter attached)\n", st.StaticPJ/1e6)
	} else {
		fmt.Printf("energy=%.3f uJ avg=%.2f pJ/cycle\n", st.Energy.Total/1e6, st.AvgPJPerCycle())
	}
	fmt.Printf("exit status ($v0) = %d\n", int32(res.Regs[isa.V0]))
	runErr := res.Err
	if runErr == nil && !res.Done {
		runErr = &cpu.CycleLimitError{Limit: *maxCycles}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "simrun:", runErr)
	}
	if *regs {
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			fmt.Printf("%-6s %#08x\n", r, res.Regs[r])
		}
	}
	if *traceOut != "" && res.Trace != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(1)
		}
		defer f.Close()
		series := res.Trace.Totals
		width := 1
		if *bucket > 1 {
			series = trace.Bucket(res.Trace.Totals, *bucket)
			width = *bucket
		}
		if err := trace.WriteCSV(f, []string{"cycle", "pj"},
			trace.Series(len(series), width), series); err != nil {
			fmt.Fprintln(os.Stderr, "simrun:", err)
			os.Exit(1)
		}
	}
	if runErr != nil {
		os.Exit(1)
	}
}
