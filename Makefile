# Standard workflows for the desmask reproduction.

GO ?= go

.PHONY: all build test test-short bench bench-json experiments csv verify fmt vet clean leakd

all: build test

build:
	$(GO) build ./...

# The leakage-assessment daemon (see README "The assessment service").
leakd:
	$(GO) build -o leakd ./cmd/leakd

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Machine-readable benchmark artifacts:
#  - predecoded-core throughput: cycles/sec, ns/cycle and allocs/op for
#    untraced and traced full-DES runs (BENCH_predecode.json)
#  - sequential vs parallel batch trace acquisition (traces/sec + bit-identity)
#  - block-compiled engine vs cycle-accurate core on both ISAs: speedup and
#    bit-identity of ciphertext/stats/registers (BENCH_blockcompile.json)
#  - compiler optimization ablation (per-policy instruction/cycle/energy
#    counts for DES with and without -O)
#  - streaming TVLA acceptance run: 10k-trace fixed-vs-random DES per policy
#    at workers 1/4/16 (bit-identity, verdicts, traces/sec, constant memory
#    vs the materialized dpa.Collect baseline) (BENCH_tvla.json)
#  - gang-scheduled lockstep assessment vs the scalar path per policy
#    (traces/sec, speedup, t-vector bit-identity) (BENCH_gang.json)
#  - leakd under concurrent client load: per-second 200/429/504 curves,
#    cache-hit rate and latency percentiles (BENCH_leakd.json)
#  - full 48-bit key-recovery success rate vs trace count, unprotected vs
#    operand-shuffled (BENCH_keyrecovery.json)
bench-json:
	$(GO) run ./cmd/simbench -traces 64 -trials 10 \
		-o BENCH_parallel_traces.json -core-o BENCH_predecode.json
	$(GO) run ./cmd/simbench -blocks -trials 20 -blocks-o BENCH_blockcompile.json
	$(GO) run ./cmd/simbench -gang 16 -traces 128 -max 12000 -workers 1 \
		-gang-o BENCH_gang.json
	$(GO) run ./cmd/optbench -o BENCH_compiler_opt.json
	$(GO) run ./cmd/tvla -bench -traces 10000 -max 12000 -o BENCH_tvla.json
	$(GO) run ./cmd/leakload -clients 64 -requests 512 -traces 32 \
		-concurrency 4 -queue 16 -o BENCH_leakd.json
	$(GO) run ./cmd/dpa-attack -curve 32,64,128,256 -o BENCH_keyrecovery.json

# Regenerate every figure and table of the paper (text report + plots).
experiments:
	$(GO) run ./cmd/experiments -traces 256 -plot

# CSV series for external plotting.
csv:
	$(GO) run ./cmd/experiments -traces 256 -csv out

# The repository's verification artifacts.
verify:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	rm -rf out
	$(GO) clean -testcache
