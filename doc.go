// Package desmask is a full reproduction of "Masking the Energy Behavior of
// DES Encryption" (Saputra, Vijaykrishnan, Kandemir, Irwin, Brooks, Kim,
// Zhang — DATE 2003): a smart-card processor simulator whose ISA is extended
// with secure (dual-rail, precharged) instruction variants, a masking
// compiler that applies them selectively via forward slicing from
// `secure`-annotated variables, a cycle-accurate transition-sensitive energy
// model, the DES workload, and the SPA/DPA attack framework the scheme
// defends against.
//
// Start with package core for the high-level API, package experiments for
// the paper's figures and tables, and the executables under cmd/ for CLI
// access. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package desmask
