module desmask

go 1.22
